"""Exhaustive fault-tolerance certification of every synthesized protocol.

These are the library's most important tests: Definition 1 at t = 1,
proved by enumeration for each catalog code.
"""

import numpy as np
import pytest

from repro.core.ftcheck import (
    check_fault_tolerance,
    enumerate_checkable_injections,
)

from ..conftest import cached_protocol


class TestDefinitionOne:
    @pytest.mark.parametrize(
        "key",
        ["steane", "shor", "surface_3", "11_1_3", "carbon"],
    )
    def test_fast_codes_fault_tolerant(self, key):
        violations = check_fault_tolerance(cached_protocol(key))
        assert violations == []

    @pytest.mark.slow
    @pytest.mark.parametrize("key", ["tetrahedral", "hamming", "16_2_4"])
    def test_large_codes_fault_tolerant(self, key):
        violations = check_fault_tolerance(cached_protocol(key))
        assert violations == []

    @pytest.mark.slow
    def test_tesseract_fault_tolerant(self):
        violations = check_fault_tolerance(cached_protocol("tesseract"))
        assert violations == []

    def test_optimal_prep_protocols_fault_tolerant(self):
        for key in ("steane", "shor"):
            protocol = cached_protocol(key, prep_method="optimal")
            assert check_fault_tolerance(protocol) == []

    def test_greedy_verification_protocols_fault_tolerant(self):
        protocol = cached_protocol(
            "steane", verification_method="greedy"
        )
        assert check_fault_tolerance(protocol) == []


class TestCheckerMechanics:
    def test_injection_count_covers_all_locations(self, steane_protocol):
        injections = list(enumerate_checkable_injections(steane_protocol))
        # Each 1q gate -> 3, CX -> 15, reset -> 1, measure -> 1.
        expected = 0
        segments = [steane_protocol.prep_segment] + [
            l.circuit for l in steane_protocol.layers
        ]
        for segment in segments:
            expected += 3 * segment.count("H")
            expected += 15 * segment.count("CX")
            expected += segment.count("ResetZ") + segment.count("ResetX")
            expected += segment.count("MeasureZ") + segment.count("MeasureX")
        assert len(injections) == expected

    def test_detects_sabotaged_recovery(self, steane_protocol):
        """Corrupting a branch recovery must produce violations."""
        import copy

        protocol = copy.deepcopy(steane_protocol)
        layer = protocol.layers[0]
        branch = next(iter(layer.branches.values()))
        for syndrome in list(branch.recoveries):
            sabotage = branch.recoveries[syndrome].copy()
            sabotage ^= 1  # flip every qubit of the recovery
            branch.recoveries[syndrome] = sabotage
        violations = check_fault_tolerance(protocol)
        assert violations

    def test_detects_removed_branch(self, steane_protocol):
        import copy

        protocol = copy.deepcopy(steane_protocol)
        protocol.layers[0].branches.clear()
        violations = check_fault_tolerance(protocol)
        assert violations

    def test_max_violations_cap(self, steane_protocol):
        import copy

        protocol = copy.deepcopy(steane_protocol)
        protocol.layers[0].branches.clear()
        violations = check_fault_tolerance(protocol, max_violations=2)
        assert len(violations) == 2

    def test_violation_str(self, steane_protocol):
        import copy

        protocol = copy.deepcopy(steane_protocol)
        protocol.layers[0].branches.clear()
        violation = check_fault_tolerance(protocol, max_violations=1)[0]
        text = str(violation)
        assert "wt_S" in text
