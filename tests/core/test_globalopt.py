"""Unit tests for the global optimization procedure (paper Sec. IV)."""

import pytest

from repro.codes.catalog import get_code
from repro.core.ftcheck import check_fault_tolerance
from repro.core.globalopt import (
    GlobalOptResult,
    globally_optimize_protocol,
    protocol_score,
)
from repro.core.metrics import protocol_metrics

from ..conftest import cached_protocol


class TestGlobalOptimization:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_never_worse_than_sequential(self, key):
        """Paper: global optimization 'yields equivalently good circuits in
        most cases' and sometimes strictly better — never worse."""
        sequential = protocol_metrics(cached_protocol(key))
        result = globally_optimize_protocol(get_code(key))
        assert protocol_score(result.metrics) <= protocol_score(sequential)

    @pytest.mark.parametrize("key", ["steane", "shor"])
    def test_result_is_fault_tolerant(self, key):
        result = globally_optimize_protocol(get_code(key))
        assert check_fault_tolerance(result.protocol) == []

    def test_explores_multiple_candidates(self):
        result = globally_optimize_protocol(get_code("steane"))
        assert result.candidates_explored >= 1
        assert not result.timed_out

    def test_verification_limit_respected(self):
        result = globally_optimize_protocol(
            get_code("steane"), verification_limit=1
        )
        assert result.candidates_explored >= 1

    def test_time_budget_cancellation(self):
        """Paper: Carbon/[[16,2,4]] global runs were cancelled after 2h. A
        tiny budget must still return the best-so-far without raising,
        provided at least one candidate finished."""
        result = globally_optimize_protocol(
            get_code("shor"), time_budget=1e9
        )
        assert isinstance(result, GlobalOptResult)
        assert not result.timed_out

    def test_prep_override(self):
        from repro.synth.prep import prepare_zero_optimal

        code = get_code("shor")
        prep = prepare_zero_optimal(code)
        result = globally_optimize_protocol(code, prep=prep)
        assert result.protocol.prep.method == "optimal"

    def test_score_lexicographic(self):
        a = protocol_metrics(cached_protocol("steane"))
        score = protocol_score(a)
        assert score[0] == a.total_verification_ancillas
        assert score[1] == a.total_verification_cnots

    def test_repr(self):
        result = globally_optimize_protocol(get_code("steane"))
        assert "explored" in repr(result)
