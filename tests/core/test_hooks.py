"""Unit tests for hook-error analysis and CNOT-order optimization."""

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code, surface_code_d3
from repro.core.errors import error_reducer
from repro.core.hooks import (
    dangerous_suffixes,
    optimize_order,
    order_is_safe,
    suffix_errors,
)
from repro.pauli.group import CosetReducer


class TestSuffixErrors:
    def test_weight_4_has_two_proper_suffixes(self):
        suffixes = suffix_errors([0, 1, 2, 3], 5)
        assert len(suffixes) == 2
        assert suffixes[0].tolist() == [0, 1, 1, 1, 0]
        assert suffixes[1].tolist() == [0, 0, 1, 1, 0]

    def test_weight_3_has_one(self):
        suffixes = suffix_errors([4, 1, 2], 5)
        assert len(suffixes) == 1
        assert suffixes[0].tolist() == [0, 1, 1, 0, 0]

    def test_weight_2_has_none(self):
        assert suffix_errors([0, 1], 3) == []

    def test_order_dependence(self):
        a = suffix_errors([0, 1, 2], 4)
        b = suffix_errors([2, 1, 0], 4)
        assert a[0].tolist() != b[0].tolist()


class TestSteaneHooks:
    """Paper Fig. 1 / Example 2: hooks on a weight-4 Steane stabilizer."""

    def test_weight_4_z_stabilizer_has_dangerous_hook_generic_state(self):
        """Fig. 1 shows a dangerous hook when only plain Z stabilizers can
        reduce the error (a generic encoded state, Example 2)."""
        import itertools

        code = steane_code()
        generic_reducer = CosetReducer(code.hz, 7)
        support = code.hz[0]
        qubits = [int(q) for q in np.nonzero(support)[0]]
        danger_counts = [
            len(dangerous_suffixes(list(order), generic_reducer))
            for order in itertools.permutations(qubits)
        ]
        assert max(danger_counts) > 0

    def test_same_hook_harmless_on_zero_state(self):
        """On |0>_L the reduction group gains Z_L, which tames every hook of
        this stabilizer — the protocol exploits exactly this asymmetry."""
        import itertools

        code = steane_code()
        reducer = error_reducer(code, "Z")  # includes Z_L
        support = code.hz[0]
        qubits = [int(q) for q in np.nonzero(support)[0]]
        for order in itertools.permutations(qubits):
            assert dangerous_suffixes(list(order), reducer) == []

    def test_weight_3_verification_measurement_safe(self):
        """The Steane verification measurement (weight-3, Z_L-equivalent)
        has only harmless suffixes: its weight-2 suffix completes to the
        operator itself modulo a stabilizer... check via optimize_order."""
        code = steane_code()
        reducer = error_reducer(code, "X")
        # Z_L = Z0 Z1 Z2 in our labelling (paper: qubits 1,2,3).
        support = code.logical_z[0]
        order, safe = optimize_order(support, reducer)
        # Whether safe depends on code structure; assert consistency at least:
        assert order_is_safe(order, reducer) == safe


class TestOptimizeOrder:
    def test_weight_2_trivially_safe(self):
        reducer = CosetReducer(np.zeros((0, 4), dtype=np.uint8), 4)
        order, safe = optimize_order([1, 1, 0, 0], reducer)
        assert safe
        assert sorted(order) == [0, 1]

    def test_trivial_group_weight_4_never_safe(self):
        # Without any stabilizer to reduce against, every weight-4 order has
        # a dangerous weight-2 suffix.
        reducer = CosetReducer(np.zeros((0, 4), dtype=np.uint8), 4)
        order, safe = optimize_order([1, 1, 1, 1], reducer)
        assert not safe

    def test_returns_permutation_of_support(self):
        code = surface_code_d3()
        reducer = error_reducer(code, "X")
        support = code.hz[0]
        order, _ = optimize_order(support, reducer)
        assert sorted(order) == [int(q) for q in np.nonzero(support)[0]]

    def test_shor_weight_6_measurement_safe(self):
        """Shor's weight-2 Z stabilizers make in-block Z pairs harmless, so
        a suitable order renders the weight-6 X-stabilizer hooks safe."""
        code = get_code("shor")
        reducer = error_reducer(code, "Z")
        order, safe = optimize_order(code.hx[0], reducer)
        assert safe

    def test_safe_order_found_for_surface_weight_4(self):
        """The surface-code weight-4 Z check: adjacent Z pairs reduce to
        weight <= 1 modulo the plaquette group only for some orders."""
        code = surface_code_d3()
        z_reducer = error_reducer(code, "Z")
        support = code.hz[0]  # weight-4 bulk check
        order, safe = optimize_order(support, z_reducer)
        assert order_is_safe(order, z_reducer) == safe

    def test_deterministic(self):
        code = steane_code()
        reducer = error_reducer(code, "Z")
        a = optimize_order(code.hz[0], reducer)
        b = optimize_order(code.hz[0], reducer)
        assert a == b


class TestConsistencyWithGadgetFaults:
    """The analytic suffix model must agree with exhaustive gadget faults."""

    @pytest.mark.parametrize("key", ["steane", "surface_3"])
    def test_suffixes_match_actual_ancilla_faults(self, key):
        from repro.circuits.builder import append_z_measurement
        from repro.circuits.circuit import Circuit
        from repro.core.faults import propagate_all_faults

        code = get_code(key)
        support = code.hz[0]
        qubits = [int(q) for q in np.nonzero(support)[0]]
        n = code.n
        circuit = Circuit(n + 1)
        append_z_measurement(circuit, support, ancilla=n, bit="b")
        # Collect all distinct non-trivial Z data errors from single faults.
        observed = set()
        for pf in propagate_all_faults(circuit):
            z = pf.data_z(n)
            if z.any():
                observed.add(tuple(z.tolist()))
        # Analytic model: suffixes of length >= 2 (proper hooks), plus the
        # full support, plus single-qubit Z errors on support qubits.
        expected = set()
        for j in range(len(qubits)):
            vec = np.zeros(n, dtype=np.uint8)
            vec[qubits[j:]] = 1
            expected.add(tuple(vec.tolist()))
        for q in qubits:
            vec = np.zeros(n, dtype=np.uint8)
            vec[q] = 1
            expected.add(tuple(vec.tolist()))
        assert observed <= expected
        # Every proper suffix must actually be reachable by some fault.
        for s in suffix_errors(qubits, n):
            assert tuple(s.tolist()) in observed
