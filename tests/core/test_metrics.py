"""Unit tests for Table-I metric extraction."""

import pytest

from repro.core.metrics import protocol_metrics

from ..conftest import cached_protocol


class TestSteaneRow:
    """The Steane row of Table I, reproduced exactly."""

    def test_totals(self, steane_protocol):
        m = protocol_metrics(steane_protocol)
        assert m.total_verification_ancillas == 1
        assert m.total_verification_cnots == 3
        assert m.average_correction_ancillas == 1.0
        assert m.average_correction_cnots == 3.0

    def test_layer_fragment(self, steane_protocol):
        m = protocol_metrics(steane_protocol)
        (layer,) = m.layers
        assert layer.kind == "X"
        assert layer.verification_ancillas == 1
        assert layer.verification_cnots == 3
        assert layer.correction_ancillas_m == [1]
        assert layer.correction_cnots_m == [3]
        assert layer.correction_ancillas_f == []

    def test_row_dict(self, steane_protocol):
        row = protocol_metrics(steane_protocol).as_row()
        assert row["code"] == "Steane"
        assert row["sum_anc"] == 1
        assert row["sum_cnot"] == 3
        assert row["layers"] == 1
        assert "L1" in row


class TestAverages:
    def test_average_over_all_branches(self, carbon_protocol):
        m = protocol_metrics(carbon_protocol)
        branches = carbon_protocol.all_branches()
        expected_anc = sum(b.num_ancillas for b in branches) / len(branches)
        expected_cnot = sum(b.cnot_count for b in branches) / len(branches)
        assert m.average_correction_ancillas == pytest.approx(expected_anc)
        assert m.average_correction_cnots == pytest.approx(expected_cnot)

    def test_verification_totals_sum_layers(self, carbon_protocol):
        m = protocol_metrics(carbon_protocol)
        assert m.total_verification_ancillas == sum(
            l.verification_ancillas + l.flag_ancillas for l in m.layers
        )
        assert m.total_verification_cnots == sum(
            l.verification_cnots + l.flag_cnots for l in m.layers
        )

    def test_flag_cnots_two_per_flag(self, carbon_protocol):
        for layer in protocol_metrics(carbon_protocol).layers:
            assert layer.flag_cnots == 2 * layer.flag_ancillas

    def test_branch_partition_m_vs_f(self, carbon_protocol):
        m = protocol_metrics(carbon_protocol)
        total = sum(layer.branch_count for layer in m.layers)
        assert total == len(carbon_protocol.all_branches())

    def test_format_fragment_contains_brackets(self, steane_protocol):
        fragment = protocol_metrics(steane_protocol).layers[0].format_fragment()
        assert "[1]" in fragment and "[3]" in fragment


class TestDepthMetrics:
    def test_depths_positive(self, steane_protocol):
        m = protocol_metrics(steane_protocol)
        assert m.prep_depth >= 1
        assert m.verification_depth >= 1
        assert m.prep_cnots == steane_protocol.prep.cnot_count

    def test_depth_bounded_by_gate_count(self, carbon_protocol):
        m = protocol_metrics(carbon_protocol)
        assert m.prep_depth <= len(carbon_protocol.prep.circuit)
        total_verif_ops = sum(
            len(layer.circuit) for layer in carbon_protocol.layers
        )
        assert m.verification_depth <= total_verif_ops

    def test_verification_depth_sums_layers(self, carbon_protocol):
        m = protocol_metrics(carbon_protocol)
        expected = sum(
            layer.circuit.depth() for layer in carbon_protocol.layers
        )
        assert m.verification_depth == expected


class TestPaperShapeClaims:
    """Structural Table-I claims that must hold despite prep differences."""

    def test_single_layer_flag_corrections_free(self):
        """Paper: 'none of the flag corrections require additional
        measurements in the considered cases' (d=3 single-layer codes)."""
        for key in ("steane", "shor", "surface_3", "tetrahedral", "hamming"):
            protocol = cached_protocol(key)
            for layer in protocol.layers:
                for branch in layer.branches.values():
                    if branch.is_hook:
                        assert branch.num_ancillas == 0

    def test_correction_measurements_bounded(self):
        """No branch ever needs more than the protocol's measurement cap."""
        for key in ("steane", "shor", "surface_3", "11_1_3", "carbon"):
            protocol = cached_protocol(key)
            for branch in protocol.all_branches():
                assert branch.num_ancillas <= 4

    def test_verification_cheaper_than_full_syndrome_extraction(self):
        """The point of the scheme: verifying costs less than measuring all
        stabilizers (the generic Sec. I approach)."""
        for key in ("steane", "shor", "surface_3", "carbon"):
            protocol = cached_protocol(key)
            code = protocol.code
            full_cost = int(code.hx.sum() + code.hz.sum())
            assert protocol.verification_cnots < full_cost
