"""Unit tests for the repeat-until-success baseline."""

import numpy as np
import pytest

from repro.core.nondeterministic import (
    NonDeterministicRunner,
    RepeatUntilSuccessStats,
)
from repro.sim.frame import Injection

from ..conftest import cached_protocol


class TestAttempt:
    def test_clean_attempt_accepted(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        result = runner.attempt()
        assert result.accepted
        assert not result.run.data_x.any()

    def test_triggered_attempt_rejected(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        layer = steane_protocol.layers[0]
        meas_index = next(
            i
            for i, ins in enumerate(layer.circuit.instructions)
            if ins.kind in ("MeasureZ", "MeasureX")
        )
        result = runner.attempt(
            {(("verif", 0), meas_index): Injection(flip=True)}
        )
        assert not result.accepted

    def test_branches_never_execute(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        layer = steane_protocol.layers[0]
        meas_index = next(
            i
            for i, ins in enumerate(layer.circuit.instructions)
            if ins.kind in ("MeasureZ", "MeasureX")
        )
        result = runner.attempt(
            {(("verif", 0), meas_index): Injection(flip=True)}
        )
        assert result.run.branches_taken == []

    def test_locations_exclude_branches(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        keys = {loc[0][0][0] for loc in runner.locations}
        assert "branch" not in keys


class TestAcceptedStatesAreGood:
    @pytest.mark.parametrize("key", ["steane", "surface_3"])
    def test_accepted_single_fault_states_harmless(self, key):
        """The baseline's heralding guarantee: accepted single-fault states
        carry wt_S <= 1 errors (that is what verification certifies)."""
        from repro.core.errors import error_reducer
        from repro.core.ftcheck import enumerate_checkable_injections

        protocol = cached_protocol(key)
        runner = NonDeterministicRunner(protocol)
        x_reducer = error_reducer(protocol.code, "X")
        z_reducer = error_reducer(protocol.code, "Z")
        checked = 0
        for location, injection in enumerate_checkable_injections(protocol):
            result = runner.attempt({location: injection})
            if result.accepted:
                checked += 1
                assert x_reducer.coset_weight(result.run.data_x) <= 1
                assert z_reducer.coset_weight(result.run.data_z) <= 1
        assert checked > 0


class TestSimulate:
    def test_zero_noise_always_accepts(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        stats = runner.simulate(0.0, 50, np.random.default_rng(0))
        assert stats.acceptance_rate == 1.0
        assert stats.expected_attempts == 1.0
        assert stats.logical_error_rate == 0.0

    def test_acceptance_decreases_with_noise(self, steane_protocol):
        runner = NonDeterministicRunner(steane_protocol)
        low = runner.simulate(0.01, 300, np.random.default_rng(1))
        high = runner.simulate(0.1, 300, np.random.default_rng(2))
        assert high.acceptance_rate < low.acceptance_rate
        assert high.expected_attempts > low.expected_attempts

    def test_logical_error_quadratic_order(self, steane_protocol):
        """Accepted states at small p rarely fail (heralded O(p^2))."""
        runner = NonDeterministicRunner(steane_protocol)
        stats = runner.simulate(0.005, 2000, np.random.default_rng(3))
        assert stats.logical_error_rate < 0.01

    def test_stats_str(self):
        stats = RepeatUntilSuccessStats(0.01, 120, 100, 2)
        text = str(stats)
        assert "accept" in text

    def test_expected_attempts_inverse_acceptance(self):
        stats = RepeatUntilSuccessStats(0.01, 200, 100, 0)
        assert stats.acceptance_rate == 0.5
        assert stats.expected_attempts == 2.0
