"""Unit tests for deterministic-protocol assembly (paper Fig. 3)."""

import numpy as np
import pytest

from repro.codes.catalog import get_code
from repro.core.protocol import (
    synthesize_protocol,
    synthesize_protocol_from_parts,
)
from repro.synth.prep import prepare_zero_heuristic

from ..conftest import cached_protocol


class TestStructure:
    def test_steane_single_layer(self, steane_protocol):
        """Table I: Steane needs one X layer only."""
        assert [l.kind for l in steane_protocol.layers] == ["X"]

    def test_steane_verification_cost(self, steane_protocol):
        assert steane_protocol.verification_ancillas == 1
        assert steane_protocol.verification_cnots == 3

    def test_steane_single_branch(self, steane_protocol):
        layer = steane_protocol.layers[0]
        assert len(layer.branches) == 1
        ((signature, branch),) = layer.branches.items()
        assert signature == ((1,), ())
        assert branch.num_ancillas == 1
        assert branch.cnot_count == 3

    def test_carbon_two_layers(self, carbon_protocol):
        """d=4 code with dangerous prep Z errors: X and Z layers."""
        kinds = [l.kind for l in carbon_protocol.layers]
        assert kinds == ["X", "Z"]

    def test_all_branch_signatures_nontrivial(self, carbon_protocol):
        for layer in carbon_protocol.layers:
            for (b, f) in layer.branches:
                assert any(b) or any(f)

    def test_branch_measurement_bits_unique(self, carbon_protocol):
        seen = set()
        for layer in carbon_protocol.layers:
            for spec in layer.measurements:
                assert spec.bit not in seen
                seen.add(spec.bit)
                if spec.flagged:
                    assert spec.flag_bit not in seen
                    seen.add(spec.flag_bit)
            for branch in layer.branches.values():
                for spec in branch.measurements:
                    assert spec.bit not in seen
                    seen.add(spec.bit)

    def test_hook_branches_terminate(self, carbon_protocol):
        """Fig. 3 step (e): flag-triggered corrections end the protocol."""
        for layer in carbon_protocol.layers:
            for branch in layer.branches.values():
                assert branch.terminate == branch.is_hook

    def test_wire_budget(self, steane_protocol):
        proto = steane_protocol
        used = set()
        for layer in proto.layers:
            used |= layer.circuit.qubits_used()
            for branch in layer.branches.values():
                used |= branch.circuit.qubits_used()
        assert max(used) < proto.num_wires

    def test_prep_segment_resets_all_data(self, steane_protocol):
        proto = steane_protocol
        resets = [
            ins.qubit
            for ins in proto.prep_segment
            if ins.kind == "ResetZ"
        ]
        assert sorted(resets) == list(range(proto.code.n))

    def test_repr(self, steane_protocol):
        assert "Steane" in repr(steane_protocol)


class TestLayerPolicy:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "tetrahedral", "hamming"])
    def test_single_layer_codes(self, key):
        """Table I rows with one verification layer."""
        protocol = cached_protocol(key)
        assert len(protocol.layers) == 1

    @pytest.mark.parametrize("key", ["carbon", "16_2_4"])
    def test_two_layer_codes(self, key):
        protocol = cached_protocol(key)
        assert len(protocol.layers) == 2

    def test_last_layer_flags_or_safe_orders(self):
        """The final layer cannot defer hooks: each measurement is either
        flagged or uses a hook-safe CNOT order."""
        from repro.core.errors import error_reducer
        from repro.core.hooks import order_is_safe

        for key in ("steane", "carbon"):
            protocol = cached_protocol(key)
            last = protocol.layers[-1]
            opposite = {"X": "Z", "Z": "X"}[last.kind]
            reducer = error_reducer(protocol.code, opposite)
            for spec in last.measurements:
                assert spec.flagged or order_is_safe(spec.order, reducer)

    def test_earlier_layer_hooks_covered_later(self):
        """If the first layer is unflagged, its dangerous hook residuals
        must be detected by the second layer's verification."""
        protocol = cached_protocol("carbon")
        x_layer, z_layer = protocol.layers
        if any(m.flagged for m in x_layer.measurements):
            pytest.skip("first layer flagged; nothing to defer")
        from repro.core.errors import error_reducer
        from repro.core.hooks import suffix_errors

        reducer = error_reducer(protocol.code, "Z")
        z_measurements = [m.support for m in z_layer.measurements]
        for spec in x_layer.measurements:
            for hook in suffix_errors(spec.order, protocol.code.n):
                if reducer.coset_weight(hook) >= 2:
                    assert any(
                        int(m @ hook) % 2 for m in z_measurements
                    ), "dangerous X-layer hook invisible to the Z layer"


class TestPinnedVerification:
    def test_override_measurements_used(self):
        code = get_code("steane")
        prep = prepare_zero_heuristic(code)
        # Pin a deliberately heavier (weight-4 stabilizer + logical) set.
        from repro.core.errors import dangerous_errors, detection_basis
        from repro.synth.verification import enumerate_optimal_verifications

        errors = dangerous_errors(prep, "X")
        options = enumerate_optimal_verifications(
            detection_basis(code, "X"), errors, limit=8
        )
        for option in options:
            protocol = synthesize_protocol_from_parts(
                prep, verification_x=option.measurements
            )
            got = [m.support.tolist() for m in protocol.layers[0].measurements]
            want = [m.tolist() for m in option.measurements]
            assert got == want

    def test_methods_dispatch(self):
        code = get_code("steane")
        for verification_method in ("optimal", "greedy"):
            protocol = synthesize_protocol(
                code, verification_method=verification_method
            )
            assert protocol.layers

    def test_unknown_verification_method(self):
        with pytest.raises(ValueError):
            synthesize_protocol(
                get_code("steane"), verification_method="quantum"
            )


class TestBranchRecoveries:
    def test_recovery_kinds_match_layer(self, carbon_protocol):
        for layer in carbon_protocol.layers:
            for branch in layer.branches.values():
                if branch.is_hook:
                    # Hook errors are opposite-type (spread from the ancilla).
                    assert branch.recovery_kind != layer.kind
                else:
                    assert branch.recovery_kind == layer.kind

    def test_recovery_supports_within_data(self, carbon_protocol):
        n = carbon_protocol.code.n
        for branch in carbon_protocol.all_branches():
            for recovery in branch.recoveries.values():
                assert len(recovery) == n

    def test_branch_syndrome_lengths(self, carbon_protocol):
        for branch in carbon_protocol.all_branches():
            for syndrome in branch.recoveries:
                assert len(syndrome) == len(branch.measurements)
