"""Tests for the t = 2 fault-pair survey (paper's future-work metric)."""

import numpy as np
import pytest

from repro.core.ftcheck import second_order_survey

from ..conftest import cached_protocol


class TestSecondOrderSurvey:
    def test_returns_counts(self, steane_protocol):
        survey = second_order_survey(
            steane_protocol, samples=300, rng=np.random.default_rng(0)
        )
        assert survey["pairs_checked"] > 0
        assert 0 <= survey["violations"] <= survey["pairs_checked"]
        assert 0.0 <= survey["violation_fraction"] <= 1.0

    def test_deterministic_given_rng(self, steane_protocol):
        a = second_order_survey(
            steane_protocol, samples=200, rng=np.random.default_rng(7)
        )
        b = second_order_survey(
            steane_protocol, samples=200, rng=np.random.default_rng(7)
        )
        assert a == b

    def test_t1_synthesis_not_t2_clean_in_general(self, shor_protocol):
        """A t=1 synthesis is not expected to satisfy t=2: for the Shor
        protocol ~9% of sampled fault pairs leave wt_S > 2 — the gap the
        paper's future-work section targets."""
        survey = second_order_survey(
            shor_protocol, samples=2000, rng=np.random.default_rng(1)
        )
        assert survey["violations"] > 0

    def test_steane_happens_to_be_t2_clean(self, steane_protocol):
        """Observed: no sampled Steane fault pair exceeds weight 2. (This
        does not contradict p_L ~ p^2 — weight-2 residuals already defeat
        a d=3 decoder.) Pinned as a regression observation."""
        survey = second_order_survey(
            steane_protocol, samples=2000, rng=np.random.default_rng(1)
        )
        assert survey["violations"] == 0

    def test_violation_fraction_small(self, steane_protocol):
        """Most pairs are still benign — the protocol degrades gracefully."""
        survey = second_order_survey(
            steane_protocol, samples=2000, rng=np.random.default_rng(2)
        )
        assert survey["violation_fraction"] < 0.5
