"""Round-trip tests for protocol JSON serialization."""

import json

import numpy as np
import pytest

from repro.core.ftcheck import check_fault_tolerance
from repro.core.metrics import protocol_metrics
from repro.core.serialize import (
    dump_protocol,
    load_protocol,
    protocol_from_json,
    protocol_to_json,
)

from ..conftest import cached_protocol


def assert_protocols_identical(a, b):
    assert a.code.name == b.code.name
    assert (a.code.hx == b.code.hx).all()
    assert (a.code.hz == b.code.hz).all()
    assert a.num_wires == b.num_wires
    assert [str(i) for i in a.prep_segment] == [str(i) for i in b.prep_segment]
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        assert la.kind == lb.kind
        assert [str(i) for i in la.circuit] == [str(i) for i in lb.circuit]
        assert la.branches.keys() == lb.branches.keys()
        for signature in la.branches:
            ba, bb = la.branches[signature], lb.branches[signature]
            assert ba.recovery_kind == bb.recovery_kind
            assert ba.terminate == bb.terminate
            assert ba.recoveries.keys() == bb.recoveries.keys()
            for syndrome in ba.recoveries:
                assert (
                    ba.recoveries[syndrome] == bb.recoveries[syndrome]
                ).all()
            assert [str(i) for i in ba.circuit] == [str(i) for i in bb.circuit]


class TestRoundTrip:
    @pytest.mark.parametrize("key", ["steane", "shor", "carbon"])
    def test_json_roundtrip_identical(self, key):
        original = cached_protocol(key)
        restored = protocol_from_json(protocol_to_json(original))
        assert_protocols_identical(original, restored)

    def test_loaded_protocol_still_fault_tolerant(self):
        original = cached_protocol("steane")
        restored = protocol_from_json(protocol_to_json(original))
        assert check_fault_tolerance(restored) == []

    def test_loaded_protocol_same_metrics(self):
        original = cached_protocol("carbon")
        restored = protocol_from_json(protocol_to_json(original))
        assert (
            protocol_metrics(original).as_row()
            == protocol_metrics(restored).as_row()
        )

    def test_file_roundtrip(self, tmp_path):
        original = cached_protocol("steane")
        path = tmp_path / "steane.json"
        dump_protocol(original, path)
        restored = load_protocol(path)
        assert_protocols_identical(original, restored)

    def test_double_roundtrip_stable(self):
        original = cached_protocol("steane")
        once = protocol_to_json(original)
        twice = protocol_to_json(protocol_from_json(once))
        assert once == twice


class TestFormat:
    def test_valid_json(self):
        text = protocol_to_json(cached_protocol("steane"))
        obj = json.loads(text)
        assert obj["format_version"] == 1
        assert obj["code"]["name"] == "Steane"

    def test_unknown_version_rejected(self):
        text = protocol_to_json(cached_protocol("steane"))
        obj = json.loads(text)
        obj["format_version"] = 999
        with pytest.raises(ValueError):
            protocol_from_json(json.dumps(obj))

    def test_recoveries_are_plain_lists(self):
        obj = json.loads(protocol_to_json(cached_protocol("steane")))
        branch = obj["layers"][0]["branches"][0]
        for entry in branch["recoveries"]:
            assert isinstance(entry["pauli"], list)
