"""Tests for the Fig.-4 regeneration harness."""

import math

import pytest

from repro.experiments.figure4 import (
    FIGURE4_CODES,
    FIGURE4_SWEEP,
    render_figure4,
    run_series,
)

from ..conftest import cached_protocol


class TestConfiguration:
    def test_all_table1_codes_plotted(self):
        assert len(FIGURE4_CODES) == 9

    def test_sweep_covers_paper_range(self):
        assert FIGURE4_SWEEP[0] == pytest.approx(1e-4)
        assert FIGURE4_SWEEP[-1] == pytest.approx(1e-1)
        assert len(FIGURE4_SWEEP) >= 10


class TestRunSeries:
    @pytest.fixture(scope="class")
    def steane_series(self):
        return run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=1500,
            k_max=2,
            seed=3,
        )

    def test_estimates_cover_sweep(self, steane_series):
        assert len(steane_series.estimates) == len(FIGURE4_SWEEP)

    def test_f1_zero(self, steane_series):
        assert steane_series.f1_exact == 0.0

    def test_slope_two(self, steane_series):
        assert steane_series.slope == pytest.approx(2.0, abs=0.15)

    def test_quadratic_coefficient_positive_finite(self, steane_series):
        c2 = steane_series.quadratic_coefficient
        assert 0 < c2 < 10_000
        assert math.isfinite(c2)

    def test_shots_accounted(self, steane_series):
        assert steane_series.shots == 1500

    def test_custom_sweep(self):
        series = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=200,
            k_max=2,
            sweep=[1e-3, 1e-2],
            seed=4,
        )
        assert [e.p for e in series.estimates] == [1e-3, 1e-2]


class TestDirectCheck:
    def test_direct_mc_rides_along(self):
        series = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=200,
            k_max=2,
            sweep=[1e-2],
            seed=5,
            direct_check_at=0.05,
            direct_shots=300,
        )
        assert series.direct is not None
        assert series.direct.p == pytest.approx(0.05)
        assert series.direct.trials == 300
        assert 0.0 <= series.direct.rate <= 1.0
        assert "direct-MC check" in render_figure4([series])

    def test_direct_check_off_by_default(self):
        series = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=100,
            k_max=2,
            sweep=[1e-2],
            seed=6,
        )
        assert series.direct is None


class TestRender:
    def test_render_structure(self):
        series = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=200,
            k_max=2,
            sweep=[1e-3, 1e-2],
            seed=4,
        )
        text = render_figure4([series])
        assert "== steane" in text
        assert "pL=" in text
        assert text.count("p=") >= 2
