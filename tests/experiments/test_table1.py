"""Tests for the Table-I regeneration harness."""

import pytest

from repro.experiments.table1 import (
    TABLE1_FAST_ROWS,
    TABLE1_ROWS,
    render_table1,
    run_row,
    run_table1,
)


class TestRowConfiguration:
    def test_all_paper_codes_covered(self):
        codes = {code for code, _, _ in TABLE1_ROWS}
        assert codes == {
            "steane", "shor", "surface_3", "11_1_3", "tetrahedral",
            "hamming", "carbon", "16_2_4", "tesseract",
        }

    def test_shor_has_heu_and_opt_rows(self):
        shor_preps = {prep for code, prep, _ in TABLE1_ROWS if code == "shor"}
        assert shor_preps == {"heuristic", "optimal"}

    def test_global_rows_present(self):
        assert any(v == "global" for _, _, v in TABLE1_ROWS)

    def test_fast_rows_subset(self):
        assert set(TABLE1_FAST_ROWS) <= set(TABLE1_ROWS)
        assert all(code != "tesseract" for code, _, _ in TABLE1_FAST_ROWS)


class TestRunRow:
    def test_steane_optimal(self):
        row = run_row("steane", "heuristic", "optimal")
        assert row.metrics.total_verification_ancillas == 1
        assert row.metrics.total_verification_cnots == 3
        assert row.metrics.average_correction_ancillas == 1.0
        assert row.metrics.average_correction_cnots == 3.0
        assert row.global_candidates is None

    def test_steane_global(self):
        row = run_row("steane", "heuristic", "global")
        assert row.global_candidates >= 1
        # Global never worse than sequential-optimal.
        sequential = run_row("steane", "heuristic", "optimal")
        assert (
            row.metrics.total_verification_ancillas
            <= sequential.metrics.total_verification_ancillas
        )

    def test_cells_flat_dict(self):
        cells = run_row("steane", "heuristic", "optimal").cells()
        assert cells["code"] == "steane"
        assert cells["prep"] == "heu"
        assert "sec" in cells


class TestRunAndRender:
    def test_small_batch(self):
        rows = run_table1(
            [("steane", "heuristic", "optimal"),
             ("surface_3", "heuristic", "optimal")]
        )
        assert len(rows) == 2
        text = render_table1(rows)
        assert "steane" in text
        assert "surface_3" in text
        assert "ΣANC" in text

    def test_render_contains_layer_fragments(self):
        rows = run_table1([("steane", "heuristic", "optimal")])
        text = render_table1(rows)
        assert "X:" in text
        assert "corr" in text
