"""Cross-validation of the batched certificate/budget paths.

The acceptance contract of the evaluation-substrate refactor: the batched
``check_fault_tolerance``, ``second_order_survey`` (seeded), and
``two_fault_error_budget`` must agree *exactly* — verdicts, violation
lists, f2 mass per segment/kind pair — with the per-shot reference path on
every catalog code, and the MWPM decoder must be a drop-in judge for the
batched engine on matchable codes.
"""

import copy

import numpy as np
import pytest

from repro.core.analysis import two_fault_error_budget
from repro.core.ftcheck import check_fault_tolerance, second_order_survey
from repro.sim.logical import LogicalJudge
from repro.sim.matching import is_matchable
from repro.sim.noise import sample_injections_stratum
from repro.sim.sampler import BatchedSampler

from ..conftest import ALL_CODES, FAST_CODES, cached_protocol

SLOW_CODES = [key for key in ALL_CODES if key not in FAST_CODES]


class TestFTCheckCrossValidation:
    @pytest.mark.parametrize("key", FAST_CODES)
    def test_engines_agree_fast_codes(self, key):
        protocol = cached_protocol(key)
        batched = check_fault_tolerance(protocol, engine="batched")
        reference = check_fault_tolerance(protocol, engine="reference")
        assert batched == reference == []

    @pytest.mark.slow
    @pytest.mark.parametrize("key", SLOW_CODES)
    def test_engines_agree_large_codes(self, key):
        protocol = cached_protocol(key)
        batched = check_fault_tolerance(protocol, engine="batched")
        reference = check_fault_tolerance(protocol, engine="reference")
        assert batched == reference == []

    def test_engines_agree_on_violations(self, steane_protocol):
        """A sabotaged protocol must yield identical violation lists —
        same faults, same weights, same flip evidence, same order."""
        protocol = copy.deepcopy(steane_protocol)
        protocol.layers[0].branches.clear()
        batched = check_fault_tolerance(protocol, engine="batched")
        reference = check_fault_tolerance(protocol, engine="reference")
        assert batched  # the sabotage is detected
        assert batched == reference

    def test_max_violations_cap_respected_by_batched_path(
        self, steane_protocol
    ):
        protocol = copy.deepcopy(steane_protocol)
        protocol.layers[0].branches.clear()
        capped = check_fault_tolerance(protocol, max_violations=3)
        assert len(capped) == 3
        full = check_fault_tolerance(protocol, max_violations=10**9)
        assert capped == full[:3]


class TestSurveyCrossValidation:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_seeded_surveys_identical(self, key):
        protocol = cached_protocol(key)
        batched = second_order_survey(
            protocol, samples=600, rng=np.random.default_rng(11)
        )
        reference = second_order_survey(
            protocol,
            samples=600,
            rng=np.random.default_rng(11),
            engine="reference",
        )
        assert batched == reference


class TestBudgetCrossValidation:
    @pytest.mark.parametrize("key", ["steane", "surface_3"])
    def test_budgets_bit_identical(self, key):
        protocol = cached_protocol(key)
        batched = two_fault_error_budget(protocol, engine="batched")
        reference = two_fault_error_budget(protocol, engine="reference")
        assert batched.f2_exact == reference.f2_exact
        assert batched.c2_exact == reference.c2_exact
        assert batched.by_segment_pair == reference.by_segment_pair
        assert batched.by_kind_pair == reference.by_kind_pair

    @pytest.mark.slow
    @pytest.mark.parametrize("key", SLOW_CODES + ["shor", "11_1_3", "carbon"])
    def test_budgets_bit_identical_all_codes(self, key):
        """Every catalog code: either both engines produce the identical
        budget, or both refuse identically at the enumeration guard.

        The guard is tightened so that the largest enumerations (carbon's
        ~1M runs and up) stay out of the per-shot path's reach — the
        refusal itself must still match across engines.
        """
        protocol = cached_protocol(key)
        max_runs = 150_000
        try:
            batched = two_fault_error_budget(
                protocol, engine="batched", max_runs=max_runs
            )
        except ValueError:
            with pytest.raises(ValueError, match="two-fault budget needs"):
                two_fault_error_budget(
                    protocol, engine="reference", max_runs=max_runs
                )
            return
        reference = two_fault_error_budget(
            protocol, engine="reference", max_runs=max_runs
        )
        assert batched == reference

    def test_batch_slab_size_does_not_change_result(self, steane_protocol):
        small = two_fault_error_budget(steane_protocol, batch_size=257)
        large = two_fault_error_budget(steane_protocol, batch_size=100_000)
        assert small == large


class TestMatchingJudgeBatch:
    @pytest.mark.parametrize("key", ["shor", "surface_3"])
    def test_matching_judge_matches_lookup_in_batch(self, key):
        """MWPM-backed judging through the batched engine must reproduce
        the lookup-table verdicts on the matchable codes."""
        protocol = cached_protocol(key)
        code = protocol.code
        assert is_matchable(code.hz)
        lookup_engine = BatchedSampler(protocol)
        matching_engine = BatchedSampler(
            protocol, judge=LogicalJudge.with_matching(code)
        )
        rng = np.random.default_rng(53)
        loc_idx, draw_idx = sample_injections_stratum(
            lookup_engine.locations, 2, 500, rng
        )
        assert np.array_equal(
            matching_engine.failures_indexed(loc_idx, draw_idx),
            lookup_engine.failures_indexed(loc_idx, draw_idx),
        )

    def test_matching_judge_per_shot_consistency(self):
        """Batch mask and per-shot is_logical_failure agree for MWPM."""
        protocol = cached_protocol("surface_3")
        judge = LogicalJudge.with_matching(protocol.code)
        engine = BatchedSampler(protocol, judge=judge)
        rng = np.random.default_rng(59)
        loc_idx, draw_idx = sample_injections_stratum(
            engine.locations, 2, 200, rng
        )
        from repro.sim.noise import materialize_stratum

        dicts = materialize_stratum(engine.locations, loc_idx, draw_idx)
        batch = engine.run(dicts)
        expected = np.array(
            [judge.is_logical_failure(batch.result(s)) for s in range(200)]
        )
        assert np.array_equal(judge.failure_mask(batch.data_x), expected)
