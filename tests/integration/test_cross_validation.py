"""Cross-validation: Pauli-frame runner vs full-tableau reference runner.

The frame runner is exact for Pauli noise only because noiseless protocol
measurements are deterministic. These tests validate that argument
empirically: on thousands of random fault configurations, both executors
must agree on every recorded measurement bit, every branch decision, and
the observable parities of the final destructive readout.
"""

import numpy as np
import pytest

from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.noise import sample_injections
from repro.sim.reference import TableauProtocolRunner

from ..conftest import cached_protocol


def compare_runs(protocol, injections, rng):
    frame_runner = ProtocolRunner(protocol)
    tableau_runner = TableauProtocolRunner(protocol)
    frame_result = frame_runner.run(injections)
    tableau_result = tableau_runner.run(injections, rng=rng)

    # 1. Every recorded measurement bit agrees (frame stores flips, and
    #    noiseless outcomes are all 0, so flip == outcome).
    for bit, outcome in tableau_result.outcomes.items():
        assert frame_result.flips.get(bit, 0) == outcome, f"bit {bit}"

    # 2. Same branch decisions in the same order.
    assert frame_result.branches_taken == tableau_result.branches_taken
    assert frame_result.terminated_early == tableau_result.terminated_early

    # 3. Readout parities: the destructive bitstring is a random codeword
    #    XOR the X residual, so all Hz and logical-Z parities must match
    #    the frame's prediction.
    code = protocol.code
    readout = tableau_result.readout
    for row in np.concatenate([code.hz, code.logical_z], axis=0):
        expected = int(row @ frame_result.data_x) % 2
        assert int(row @ readout) % 2 == expected


class TestNoiselessAgreement:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    def test_clean_runs_agree(self, key):
        protocol = cached_protocol(key)
        compare_runs(protocol, {}, np.random.default_rng(0))

    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_readout_is_codeword_when_clean(self, key):
        protocol = cached_protocol(key)
        runner = TableauProtocolRunner(protocol)
        code = protocol.code
        for seed in range(5):
            result = runner.run({}, rng=np.random.default_rng(seed))
            assert not (code.hz @ result.readout % 2).any()
            assert not (code.logical_z @ result.readout % 2).any()

    def test_readout_randomizes_over_codewords(self):
        """The destructive readout collapses to different C_X codewords —
        evidence the state really is the full superposition."""
        protocol = cached_protocol("steane")
        runner = TableauProtocolRunner(protocol)
        seen = {
            tuple(runner.run({}, rng=np.random.default_rng(seed)).readout)
            for seed in range(24)
        }
        assert len(seen) > 1


class TestSingleFaultAgreement:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_every_single_fault_agrees(self, key):
        from repro.core.ftcheck import enumerate_checkable_injections

        protocol = cached_protocol(key)
        rng = np.random.default_rng(1)
        for location, injection in enumerate_checkable_injections(protocol):
            compare_runs(protocol, {location: injection}, rng)


class TestRandomFaultAgreement:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    @pytest.mark.parametrize("p", [0.01, 0.05, 0.2])
    def test_random_configurations_agree(self, key, p):
        protocol = cached_protocol(key)
        locations = protocol_locations(protocol)
        rng = np.random.default_rng(hash((key, p)) % 2**32)
        for _ in range(120):
            injections = sample_injections(locations, p, rng)
            compare_runs(protocol, injections, rng)
