"""End-to-end integration: synthesis -> simulation -> O(p^2) scaling.

These tests re-run the paper's Fig. 4 logic at reduced sample counts and
assert its *qualitative* conclusions: exact vanishing of the linear
coefficient, quadratic log-log slope, and monotonicity of the curve.
"""

import numpy as np
import pytest

from repro.experiments.figure4 import run_series
from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.logical import LogicalJudge
from repro.sim.subset import SubsetSampler

from ..conftest import cached_protocol


def make_sampler(protocol, seed=11, k_max=2):
    runner = ProtocolRunner(protocol)
    judge = LogicalJudge(protocol.code)
    return SubsetSampler(
        lambda injections: judge.is_logical_failure(runner.run(injections)),
        protocol_locations(protocol),
        k_max=k_max,
        rng=np.random.default_rng(seed),
    )


class TestQuadraticScaling:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    def test_linear_coefficient_exactly_zero(self, key):
        """FT circuits: the k=1 stratum never fails — enumerated exactly."""
        sampler = make_sampler(cached_protocol(key))
        sampler.enumerate_k1_exact()
        assert sampler.strata[1].rate == 0.0

    @pytest.mark.parametrize("key", ["steane", "surface_3"])
    def test_loglog_slope_is_two(self, key):
        series = run_series(
            key,
            protocol=cached_protocol(key),
            shots=1500,
            k_max=2,
            sweep=[1e-4, 3e-4, 1e-3, 3e-3, 1e-2],
            seed=5,
        )
        assert series.slope == pytest.approx(2.0, abs=0.1)

    def test_curve_monotone_where_truncation_negligible(self):
        """p_L(p) increases with p wherever the unsampled tail is small.
        (At p near p_max with k_max=2 the truncated estimator legitimately
        turns over — the tail bound reports exactly when.)"""
        series = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=1500,
            k_max=2,
            seed=6,
        )
        trusted = [e.mean for e in series.estimates if e.tail < 0.01]
        assert len(trusted) >= 8
        assert trusted == sorted(trusted)

    def test_nonzero_failure_rate_at_k2(self):
        """Two faults genuinely can cause logical errors (d < 5)."""
        sampler = make_sampler(cached_protocol("steane"), seed=13)
        sampler.sample_stratum(2, 800)
        assert sampler.strata[2].failures > 0

    def test_seed_reproducibility(self):
        a = run_series(
            "steane", protocol=cached_protocol("steane"),
            shots=500, k_max=2, seed=21,
        )
        b = run_series(
            "steane", protocol=cached_protocol("steane"),
            shots=500, k_max=2, seed=21,
        )
        assert [e.mean for e in a.estimates] == [e.mean for e in b.estimates]


class TestDirectMonteCarloConsistency:
    def test_subset_estimate_matches_direct_sampling(self):
        """At moderate p the subset estimate must agree with plain
        Bernoulli Monte-Carlo within combined statistical error."""
        from repro.sim.noise import sample_injections

        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        locations = protocol_locations(protocol)

        p = 0.02
        sampler = make_sampler(protocol, seed=3, k_max=4)
        sampler.enumerate_k1_exact()
        sampler.sample(4000, p_ref=p)
        estimate = sampler.estimate(p)

        rng = np.random.default_rng(17)
        shots = 20000
        failures = sum(
            judge.is_logical_failure(
                runner.run(sample_injections(locations, p, rng))
            )
            for _ in range(shots)
        )
        direct = failures / shots
        sigma = (direct * (1 - direct) / shots) ** 0.5
        assert abs(direct - estimate.mean) < 5 * sigma + estimate.tail


class TestProtocolDeterminism:
    """The 'deterministic' in the paper's title: one pass, no retries."""

    @pytest.mark.parametrize("key", ["steane", "carbon"])
    def test_single_pass_execution(self, key):
        """Every single-fault run completes in one pass through the layer
        list — the runner never loops back (structural property of the
        executor, asserted via branches_taken ordering)."""
        from repro.core.ftcheck import enumerate_checkable_injections

        protocol = cached_protocol(key)
        runner = ProtocolRunner(protocol)
        for location, injection in enumerate_checkable_injections(protocol):
            result = runner.run({location: injection})
            layer_indices = [li for li, _, _ in result.branches_taken]
            assert layer_indices == sorted(set(layer_indices))

    def test_every_triggered_run_gets_recovery_or_termination(self):
        """No verification trigger is ever left unhandled by one fault."""
        from repro.core.ftcheck import enumerate_checkable_injections

        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        for location, injection in enumerate_checkable_injections(protocol):
            result = runner.run({location: injection})
            triggered = any(
                result.flips.get(bit, 0)
                for layer in protocol.layers
                for bit in layer.bits + layer.flag_bits
            )
            if triggered:
                assert result.branches_taken, (
                    f"trigger without branch for fault at {location}"
                )
