"""Cross-validation of the heterogeneous noise subsystem (ISSUE 5).

The acceptance contract of ``repro.sim.noisemodels``:

* E1_1 routed through the new ``model=`` seam is **bit-identical** to not
  passing a model at all — on the subset sampler (serial and sharded),
  the FT certificate, the exact two-fault budget, and direct MC;
* ``BiasedPauliModel`` logical-failure estimates on Steane agree with the
  per-shot :class:`ReferenceSampler` within Monte-Carlo error;
* the exact biased k ≤ 2 enumerations match an independent brute-force
  enumeration (weights recomputed from first principles in this file);
* correlated pair sites execute identically on both engines and surface
  as single events in the k = 1 exact stratum and the certificate.
"""

import itertools
import math

import numpy as np
import pytest

from repro.core.analysis import two_fault_error_budget
from repro.core.faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from repro.core.ftcheck import check_fault_tolerance
from repro.sim.frame import protocol_locations
from repro.sim.noise import E1_1, draw_counts
from repro.sim.noisemodels import (
    BiasedPauliModel,
    CorrelatedPairModel,
    site_universe,
)
from repro.sim.sampler import BatchedSampler, ReferenceSampler, make_sampler
from repro.sim.subset import SubsetSampler, direct_mc

from ..conftest import cached_protocol

BIASED = BiasedPauliModel(p=0.02, eta=50.0)


def strata_tallies(sampler):
    return {
        k: (s.trials, s.failures, s.exact) for k, s in sampler.strata.items()
    }


class TestE11SeamBitIdentity:
    """Passing model=E1_1 must change nothing, bit for bit."""

    def test_subset_sampler_serial(self, steane_protocol):
        plain = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(7)
        )
        plain.enumerate_k1_exact()
        plain.sample(1200)
        seamed = SubsetSampler.for_protocol(
            steane_protocol,
            rng=np.random.default_rng(7),
            model=E1_1(p=0.1),
        )
        seamed.enumerate_k1_exact()
        seamed.sample(1200)
        assert strata_tallies(plain) == strata_tallies(seamed)
        for p in (1e-4, 1e-3, 1e-2, 1e-1):
            a, b = plain.estimate(p), seamed.estimate(p)
            assert (a.mean, a.lower, a.upper, a.tail) == (
                b.mean,
                b.lower,
                b.upper,
                b.tail,
            )

    def test_subset_sampler_sharded(self, steane_protocol):
        with SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(13), workers=2
        ) as plain:
            plain.enumerate_k1_exact()
            plain.sample(1000)
            plain_tallies = strata_tallies(plain)
        with SubsetSampler.for_protocol(
            steane_protocol,
            rng=np.random.default_rng(13),
            workers=2,
            model=E1_1(p=0.1),
        ) as seamed:
            seamed.enumerate_k1_exact()
            seamed.sample(1000)
            assert plain_tallies == strata_tallies(seamed)

    def test_ftcheck_and_budget(self, steane_protocol):
        assert check_fault_tolerance(steane_protocol) == check_fault_tolerance(
            steane_protocol, model=E1_1(p=1e-3)
        )
        assert two_fault_error_budget(steane_protocol) == two_fault_error_budget(
            steane_protocol, model=E1_1(p=1e-3)
        )

    def test_direct_mc(self, steane_protocol):
        engine = make_sampler(steane_protocol)
        a = direct_mc(engine, E1_1(p=0.05), 600, rng=np.random.default_rng(3))
        b = direct_mc(engine, E1_1(p=0.05), 600, rng=np.random.default_rng(3))
        assert (a.trials, a.failures) == (b.trials, b.failures)

    def test_run_series_seam(self, steane_protocol):
        from repro.experiments.figure4 import run_series

        plain = run_series(
            "steane", protocol=steane_protocol, shots=400, seed=5
        )
        seamed = run_series(
            "steane",
            protocol=steane_protocol,
            shots=400,
            seed=5,
            model=E1_1(p=0.1),
        )
        assert [e.mean for e in plain.estimates] == [
            e.mean for e in seamed.estimates
        ]
        assert plain.f1_exact == seamed.f1_exact


class TestBiasedEngineParity:
    def test_stratum_batches_identical_on_both_engines(self, steane_protocol):
        batched = BatchedSampler(steane_protocol)
        reference = ReferenceSampler(steane_protocol)
        universe = site_universe(batched.locations, BIASED)
        loc_idx, draw_idx = universe.sample_stratum(
            2, 400, np.random.default_rng(21)
        )
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )

    def test_bernoulli_batches_identical_on_both_engines(self, steane_protocol):
        from repro.sim.noise import sample_injections_model_batch

        batched = BatchedSampler(steane_protocol)
        reference = ReferenceSampler(steane_protocol)
        loc_idx, draw_idx = sample_injections_model_batch(
            batched.locations, BIASED, 300, np.random.default_rng(22)
        )
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )

    def test_subset_estimate_agrees_with_reference_direct_mc(
        self, steane_protocol
    ):
        """ISSUE-5 acceptance: biased p_L on Steane from the subset
        decomposition matches the per-shot reference sampler's direct
        Bernoulli estimate within Monte-Carlo error."""
        sampler = SubsetSampler.for_protocol(
            steane_protocol,
            k_max=3,
            rng=np.random.default_rng(11),
            model=BIASED,
        )
        sampler.enumerate_k1_exact()
        sampler.enumerate_k2_exact()
        sampler.sample(3000)
        expected = sampler.estimate(BIASED.p)
        reference = direct_mc(
            ReferenceSampler(steane_protocol),
            BIASED,
            3000,
            rng=np.random.default_rng(12),
        )
        sigma = max(
            math.sqrt(
                max(expected.mean * (1 - expected.mean), 1e-9)
                / reference.trials
            ),
            1.0 / reference.trials,
        )
        assert abs(reference.rate - expected.mean) < 5 * sigma + expected.tail

    def test_sharded_biased_identical_for_any_worker_count(
        self, steane_protocol
    ):
        tallies = []
        for workers in (1, 2):
            with SubsetSampler.for_protocol(
                steane_protocol,
                rng=np.random.default_rng(5),
                model=BIASED,
                workers=workers,
            ) as sampler:
                sampler.enumerate_k1_exact()
                sampler.sample(900)
                tallies.append(strata_tallies(sampler))
        assert tallies[0] == tallies[1]


def biased_draw_tables(eta):
    """Independent reimplementation of the biased conditional draws."""
    omega = {"I": 1.0, "X": 1.0, "Y": 1.0, "Z": eta}
    one = np.asarray([omega[a] for a in ONE_QUBIT_PAULIS])
    two = np.asarray([omega[a] * omega[b] for a, b in TWO_QUBIT_PAULIS])
    return {
        "1q": one / one.sum(),
        "2q": two / two.sum(),
        "reset_z": np.ones(1),
        "reset_x": np.ones(1),
        "meas": np.ones(1),
    }


class TestBiasedExactEnumerationBruteForce:
    """The exact biased k <= 2 masses vs first-principles brute force."""

    def test_k1_mass_matches_brute_force(self, steane_protocol):
        sampler = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(0), model=BIASED
        )
        sampler.enumerate_k1_exact()
        f1 = sampler.strata[1].rate

        engine = make_sampler(steane_protocol)
        locations = engine.locations
        q = biased_draw_tables(BIASED.eta)
        total = 0.0
        n = len(locations)
        for index, (_, kind, _) in enumerate(locations):
            weights = q[kind]
            for draw in range(weights.size):
                loc_idx = np.asarray([[index]], dtype=np.intp)
                draw_idx = np.asarray([[draw]], dtype=np.intp)
                verdict = engine.failures_indexed(loc_idx, draw_idx)[0]
                if verdict:
                    # Uniform rates: P(site | K=1) = 1/N exactly.
                    total += weights[draw] / n
        assert f1 == pytest.approx(total, rel=1e-9, abs=1e-12)

    def test_k2_budget_matches_brute_force(self, steane_protocol):
        budget = two_fault_error_budget(steane_protocol, model=BIASED)

        engine = make_sampler(steane_protocol)
        locations = engine.locations
        counts = draw_counts(locations)
        q = biased_draw_tables(BIASED.eta)
        n = len(locations)
        pair_count = math.comb(n, 2)
        f2 = 0.0
        by_kind: dict[tuple[str, str], float] = {}
        for i, j in itertools.combinations(range(n), 2):
            num_i, num_j = int(counts[i]), int(counts[j])
            loc = np.empty((num_i * num_j, 2), dtype=np.intp)
            loc[:, 0] = i
            loc[:, 1] = j
            draw = np.empty_like(loc)
            draw[:, 0] = np.repeat(np.arange(num_i), num_j)
            draw[:, 1] = np.tile(np.arange(num_j), num_i)
            verdicts = engine.failures_indexed(loc, draw)
            if not verdicts.any():
                continue
            kind_i = locations[i][1]
            kind_j = locations[j][1]
            weights = (
                np.repeat(q[kind_i], num_j) * np.tile(q[kind_j], num_i)
            ) / pair_count
            mass = float(weights[verdicts].sum())
            f2 += mass
            key = tuple(sorted((kind_i, kind_j)))
            by_kind[key] = by_kind.get(key, 0.0) + mass

        assert budget.f2_exact == pytest.approx(f2, rel=1e-9)
        assert set(budget.by_kind_pair) == set(by_kind)
        for key, mass in by_kind.items():
            assert budget.by_kind_pair[key] == pytest.approx(mass, rel=1e-9)
        # Uniform rates: the nominal c2 degenerates to C(N, 2) * f2.
        assert budget.c2_exact == pytest.approx(pair_count * f2, rel=1e-9)

    def test_k2_exact_budget_consistent_with_subset_sampler(
        self, steane_protocol
    ):
        """Two independent implementations of the same conditional mass:
        the planner's chunked engine path and the sampler's dict loop."""
        budget = two_fault_error_budget(steane_protocol, model=BIASED)
        sampler = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(1), model=BIASED
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].rate == pytest.approx(
            budget.f2_exact, rel=1e-6
        )


class TestHeterogeneousAllocationReference:
    def test_sample_defaults_p_ref_to_model_strength(self, steane_protocol):
        """Regression: the historical p_ref=0.1 default crashed any
        model whose max site rate exceeds 10x its base strength (the
        rescale pushes a rate past 1). The default now targets the
        model's own operating point; an explicit reachable p_ref still
        works, and an explicit unreachable one still raises."""
        from repro.sim.noisemodels import InhomogeneousModel

        model = InhomogeneousModel(
            p=1e-3, kind_rates={"meas": 1e-2}, overrides={12: 5e-3}
        )
        sampler = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(4), model=model
        )
        sampler.sample(400)  # must not raise
        assert sampler.total_trials() == 400
        sampler2 = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(4), model=model
        )
        sampler2.sample(200, p_ref=2e-3)
        assert sampler2.total_trials() == 200
        with pytest.raises(ValueError, match="site rate"):
            sampler2.sample(100, p_ref=0.5)

    def test_constant_factor_scaled_model_keeps_its_scaling(
        self, steane_protocol
    ):
        """Regression: a constant-rate model at c*p (every scale factor
        equal) must not fall into the uniform fast path — its estimate
        at the base strength has to agree with direct MC at the true
        rates, not at the unscaled p."""
        from repro.sim.noise import ScaledNoiseModel

        model = ScaledNoiseModel(
            p=4e-3,
            single_qubit=5.0,
            two_qubit=5.0,
            reset=5.0,
            measurement=5.0,
        )
        sampler = SubsetSampler.for_protocol(
            steane_protocol,
            k_max=3,
            rng=np.random.default_rng(17),
            model=model,
        )
        sampler.enumerate_k1_exact()
        sampler.enumerate_k2_exact()
        sampler.sample(2000)
        expected = sampler.estimate(model.p)
        direct = direct_mc(
            make_sampler(steane_protocol),
            model,
            40_000,
            rng=np.random.default_rng(18),
        )
        sigma = max(
            math.sqrt(
                max(expected.mean * (1 - expected.mean), 1e-9) / direct.trials
            ),
            1.0 / direct.trials,
        )
        assert abs(direct.rate - expected.mean) < 5 * sigma + expected.tail

    def test_direct_check_above_ceiling_is_skipped_not_crashed(
        self, steane_protocol
    ):
        """run_series skips a direct check the model cannot be rescaled
        to, matching the sweep's skip-not-crash rule."""
        from repro.experiments.figure4 import run_series
        from repro.sim.noisemodels import InhomogeneousModel

        model = InhomogeneousModel(p=1e-3, kind_rates={"meas": 5e-2})
        series = run_series(
            "steane",
            protocol=steane_protocol,
            shots=300,
            seed=9,
            model=model,
            direct_check_at=0.05,  # above the 0.02 ceiling
        )
        assert series.direct is None
        assert series.estimates  # the trimmed sweep still produced a curve
        assert all(e.p < 0.02 for e in series.estimates)

    def test_uniform_default_p_ref_unchanged(self, steane_protocol):
        """The uniform path keeps the historical 0.1 default: explicit
        p_ref=0.1 and the None default allocate identically."""
        a = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(6)
        )
        a.sample(600)
        b = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(6)
        )
        b.sample(600, p_ref=0.1)
        assert strata_tallies(a) == strata_tallies(b)


class TestCorrelatedPairs:
    def test_engines_agree_on_pair_strata(self, steane_protocol):
        model = CorrelatedPairModel(p=1e-3, pair_rate=5e-4)
        batched = BatchedSampler(steane_protocol)
        reference = ReferenceSampler(steane_protocol)
        universe = site_universe(batched.locations, model)
        assert universe.pairs  # adjacent CNOT pairs exist on Steane
        loc_idx, draw_idx = universe.sample_stratum(
            2, 300, np.random.default_rng(23)
        )
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )

    def test_certificate_surfaces_crosstalk_events(self, steane_protocol):
        """Steane is 1-fault FT, but a single crosstalk *event* is two
        faults — the model-aware certificate must report that honestly,
        and every violation must name a pair site."""
        assert check_fault_tolerance(steane_protocol) == []
        violations = check_fault_tolerance(
            steane_protocol,
            model=CorrelatedPairModel(p=1e-3, pair_rate=5e-4),
            max_violations=100,
        )
        assert violations
        for violation in violations:
            assert isinstance(violation.location, tuple)
            assert len(violation.location) == 2
            assert isinstance(violation.injection, tuple)

    def test_k1_exact_includes_pair_events(self, steane_protocol):
        """f_1 under a crosstalk model counts single pair events; it is
        the probability-weighted mass over all single-event rows and
        must match the failure_fn-path enumeration."""
        model = CorrelatedPairModel(p=1e-3, pair_rate=5e-4)
        engine_path = SubsetSampler.for_protocol(
            steane_protocol, rng=np.random.default_rng(2), model=model
        )
        engine_path.enumerate_k1_exact()

        from repro.sim.frame import ProtocolRunner
        from repro.sim.logical import LogicalJudge

        runner = ProtocolRunner(steane_protocol)
        judge = LogicalJudge(steane_protocol.code)
        dict_path = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            protocol_locations(steane_protocol),
            rng=np.random.default_rng(2),
            model=model,
        )
        dict_path.enumerate_k1_exact()
        assert engine_path.strata[1].rate == pytest.approx(
            dict_path.strata[1].rate, rel=1e-9, abs=1e-12
        )

    def test_direct_mc_engines_agree_under_crosstalk(self, steane_protocol):
        model = CorrelatedPairModel(p=0.02, pair_rate=0.01)
        results = []
        for engine_cls in (BatchedSampler, ReferenceSampler):
            estimate = direct_mc(
                engine_cls(steane_protocol),
                model,
                300,
                rng=np.random.default_rng(31),
            )
            results.append((estimate.trials, estimate.failures))
        assert results[0] == results[1]
