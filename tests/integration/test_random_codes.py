"""Generalization: the pipeline is automatic for arbitrary CSS codes.

The paper's closing claim is that the method applies to "upcoming codes
and codes not considered in this work" without manual analysis. These
tests synthesize and exhaustively certify protocols for codes that are
*not* in the catalog: randomly discovered instances with various
parameters. Any failure here would mean the pipeline silently depends on
structure peculiar to the nine benchmark codes.
"""

import pytest

from repro.codes.search import find_css_code
from repro.core.ftcheck import check_fault_tolerance
from repro.core.metrics import protocol_metrics
from repro.core.protocol import synthesize_protocol

# (n, k, d, search seed) — each resolves deterministically to one code.
RANDOM_CODE_SPECS = [
    (8, 1, 3, 2),
    (9, 1, 3, 7),
    (10, 1, 3, 11),
    (10, 2, 3, 5),
]


@pytest.fixture(scope="module", params=RANDOM_CODE_SPECS, ids=str)
def random_code(request):
    n, k, d, seed = request.param
    try:
        return find_css_code(
            n, k, d, seed=seed, max_tries=300_000, max_row_weight=6
        )
    except Exception:
        pytest.skip(f"no [[{n},{k},{d}]] found for seed {seed}")


class TestRandomCodeSynthesis:
    def test_protocol_synthesizes(self, random_code):
        protocol = synthesize_protocol(random_code)
        assert protocol.layers

    def test_protocol_fault_tolerant(self, random_code):
        protocol = synthesize_protocol(random_code)
        assert check_fault_tolerance(protocol) == []

    def test_metrics_extractable(self, random_code):
        metrics = protocol_metrics(synthesize_protocol(random_code))
        assert metrics.total_verification_cnots >= 0

    def test_single_faults_never_logical(self, random_code):
        from repro.core.ftcheck import enumerate_checkable_injections
        from repro.sim.frame import ProtocolRunner
        from repro.sim.logical import LogicalJudge

        protocol = synthesize_protocol(random_code)
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(random_code)
        for location, injection in enumerate_checkable_injections(protocol):
            assert not judge.is_logical_failure(
                runner.run({location: injection})
            )
