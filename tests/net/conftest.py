"""Fixtures for the ``repro.net`` transport-security suite.

TLS tests need a real certificate; a session-scoped fixture generates an
ephemeral self-signed pair with the ``openssl`` CLI (skipping those
tests on machines without it — the token-handshake and endpoint-grammar
coverage runs everywhere).
"""

from __future__ import annotations

import shutil
import subprocess

import pytest


@pytest.fixture(scope="session")
def tls_cert_pair(tmp_path_factory):
    """(certfile, keyfile) of an ephemeral self-signed localhost cert."""
    openssl = shutil.which("openssl")
    if openssl is None:
        pytest.skip("openssl CLI not available for TLS tests")
    root = tmp_path_factory.mktemp("net-tls")
    cert, key = root / "cert.pem", root / "key.pem"
    proc = subprocess.run(
        [
            openssl,
            "req",
            "-x509",
            "-newkey",
            "rsa:2048",
            "-keyout",
            str(key),
            "-out",
            str(cert),
            "-days",
            "2",
            "-nodes",
            "-subj",
            "/CN=127.0.0.1",
            "-addext",
            "subjectAltName=IP:127.0.0.1,DNS:localhost",
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        pytest.skip(f"openssl could not mint a test cert: {proc.stderr[:200]}")
    return str(cert), str(key)
