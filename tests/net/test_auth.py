"""The HMAC challenge–response primitives (``repro.net.auth``)."""

from __future__ import annotations

import pytest

from repro.net import (
    AuthError,
    NONCE_BYTES,
    client_proof,
    make_nonce,
    server_proof,
    verify_proof,
)


class TestProofs:
    def test_proofs_are_deterministic_and_distinct(self):
        sn, cn = b"s" * NONCE_BYTES, b"c" * NONCE_BYTES
        assert client_proof("tok", sn, cn) == client_proof("tok", sn, cn)
        # Domain separation: a reflected client proof can never satisfy
        # a peer waiting for the server's answering proof.
        assert client_proof("tok", sn, cn) != server_proof("tok", sn, cn)

    def test_proof_binds_token_and_both_nonces(self):
        sn, cn = make_nonce(), make_nonce()
        base = client_proof("tok", sn, cn)
        assert client_proof("other", sn, cn) != base
        assert client_proof("tok", make_nonce(), cn) != base
        assert client_proof("tok", sn, make_nonce()) != base

    def test_bytes_token_equals_utf8_str_token(self):
        sn, cn = b"s" * NONCE_BYTES, b"c" * NONCE_BYTES
        assert client_proof("tok", sn, cn) == client_proof(b"tok", sn, cn)

    def test_short_nonce_is_rejected(self):
        with pytest.raises(AuthError, match=str(NONCE_BYTES)):
            client_proof("tok", b"short", b"c" * NONCE_BYTES)


class TestVerify:
    def test_accepts_the_right_proof_only(self):
        sn, cn = make_nonce(), make_nonce()
        proof = client_proof("tok", sn, cn)
        assert verify_proof(proof, proof)
        assert verify_proof(proof, bytearray(proof))
        assert not verify_proof(proof, proof[:-1])
        assert not verify_proof(proof, client_proof("wrong", sn, cn))

    def test_malformed_input_is_false_not_an_exception(self):
        proof = client_proof("tok", make_nonce(), make_nonce())
        for garbage in (None, "hexstring", 42, [1, 2], {}):
            assert not verify_proof(proof, garbage)


class TestNonces:
    def test_fresh_and_sized(self):
        nonces = {make_nonce() for _ in range(64)}
        assert len(nonces) == 64
        assert all(len(n) == NONCE_BYTES for n in nonces)
