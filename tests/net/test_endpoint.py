"""The one endpoint grammar (``repro.net.endpoint``): parse, render,
environment defaults, legacy-form deprecation, and the allowlist."""

from __future__ import annotations

import warnings

import pytest

from repro.net import (
    AddressAllowlist,
    Endpoint,
    ambient_token,
    parse_endpoint,
    parse_endpoints,
)
from repro.net import endpoint as endpoint_module


class TestGrammar:
    def test_plain_hostport(self):
        ep = parse_endpoint("10.0.0.1:7781")
        assert ep == Endpoint("10.0.0.1", 7781)
        assert ep.address == ("10.0.0.1", 7781)
        assert not ep.tls and ep.token is None

    def test_full_query_string(self):
        ep = parse_endpoint(
            "worker.lan:7781?tls=1&cafile=/pki/ca.pem&certfile=/pki/me.pem"
            "&keyfile=/pki/me.key&token=s3cret"
        )
        assert ep.tls
        assert ep.cafile == "/pki/ca.pem"
        assert ep.certfile == "/pki/me.pem"
        assert ep.keyfile == "/pki/me.key"
        assert ep.token == "s3cret"

    def test_token_file_param(self, tmp_path):
        secret = tmp_path / "token.txt"
        secret.write_text("  hunter2\n")
        ep = parse_endpoint(f"h:1?token-file={secret}")
        assert ep.token_file == str(secret)
        assert ep.resolve_token() == "hunter2"

    def test_bare_port_is_loopback(self):
        assert parse_endpoint(":7790").address == ("127.0.0.1", 7790)

    def test_bare_host_needs_default_port(self):
        assert parse_endpoint("somehost", default_port=7790).address == (
            "somehost",
            7790,
        )
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_endpoint("somehost")

    def test_ipv6_literal(self):
        ep = parse_endpoint("[::1]:7781?tls=0")
        assert ep.host == "[::1]"
        assert ep.connect_host == "::1"
        assert ep.port == 7781

    def test_port_zero_is_ephemeral(self):
        assert parse_endpoint("127.0.0.1:0").port == 0

    def test_endpoint_passthrough(self):
        ep = Endpoint("h", 1, tls=True)
        assert parse_endpoint(ep) is ep

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "noport",
            "h:notaport",
            "[::1",
            "h:1?tls=maybe",
            "h:1?frobnicate=1",
            "h:1?token=a&token-file=b",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)

    def test_parse_endpoints_comma_list(self):
        eps = parse_endpoints("a:1,b:2?tls=1, c:3")
        assert [ep.address for ep in eps] == [("a", 1), ("b", 2), ("c", 3)]
        assert [ep.tls for ep in eps] == [False, True, False]

    def test_parse_endpoints_empty_raises(self):
        with pytest.raises(ValueError):
            parse_endpoints("")


class TestRenderRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            "h:1",
            ":0",
            "[::1]:7781",
            "h:1?tls=1",
            "h:1?tls=1&cafile=/tmp/ca.pem",
            "h:1?tls=1&certfile=/pki/a.pem&keyfile=/pki/a.key",
            "h:1?token=s3cret",
            "h:1?token-file=/run/secret",
            "h:1?token=odd%26chars%3D",
        ],
    )
    def test_parse_render_parse_is_identity(self, spec):
        ep = parse_endpoint(spec, use_env=False)
        assert parse_endpoint(ep.render(), use_env=False) == ep

    def test_render_quotes_awkward_secrets(self):
        ep = Endpoint("h", 1, token="a&b=c?d")
        again = parse_endpoint(ep.render(), use_env=False)
        assert again.token == "a&b=c?d"

    def test_describe_never_leaks_the_secret(self):
        ep = Endpoint("h", 1, tls=True, token="tops3cret")
        text = ep.describe()
        assert "tops3cret" not in text
        assert "token" in text and "tls" in text

    def test_with_address_keeps_security_fields(self):
        ep = parse_endpoint("h:0?tls=1&token=t", use_env=False)
        bound = ep.with_address("h", 45678)
        assert bound.port == 45678
        assert bound.tls and bound.token == "t"


class TestEnvironmentDefaults:
    def test_ambient_token(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_TOKEN", raising=False)
        assert ambient_token() is None
        monkeypatch.setenv("REPRO_NET_TOKEN", "  envtok \n")
        assert ambient_token() == "envtok"

    def test_resolve_token_priority(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NET_TOKEN", "envtok")
        secret = tmp_path / "t"
        secret.write_text("filetok")
        assert Endpoint("h", 1, token="inline").resolve_token() == "inline"
        assert (
            Endpoint("h", 1, token_file=str(secret)).resolve_token()
            == "filetok"
        )
        assert Endpoint("h", 1).resolve_token() == "envtok"
        monkeypatch.delenv("REPRO_NET_TOKEN")
        assert Endpoint("h", 1).resolve_token() is None

    def test_missing_token_file_is_readable_error(self):
        with pytest.raises(ValueError, match="token-file"):
            Endpoint("h", 1, token_file="/no/such/file").resolve_token()

    def test_env_tls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_TLS", "1")
        assert parse_endpoint("h:1").tls
        assert not parse_endpoint("h:1", use_env=False).tls
        assert not parse_endpoint("h:1?tls=0").tls  # explicit beats env
        monkeypatch.setenv("REPRO_NET_TLS", "off")
        assert not parse_endpoint("h:1").tls


class TestLegacyForms:
    def test_tuple_form_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(endpoint_module, "_legacy_warned", False)
        with pytest.warns(DeprecationWarning, match="endpoint spec"):
            ep = parse_endpoint(("h", 7781))
        assert ep.address == ("h", 7781)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second use: silent
            assert parse_endpoint(("h", 7782)).port == 7782

    def test_parse_hostports_shim(self, monkeypatch):
        monkeypatch.setattr(endpoint_module, "_legacy_warned", False)
        from repro.sim.cluster import parse_hostports

        with pytest.warns(DeprecationWarning):
            pairs = parse_hostports("a:1,b:2")
        assert pairs == (("a", 1), ("b", 2))

    def test_parse_hostport_shim(self, monkeypatch):
        monkeypatch.setattr(endpoint_module, "_legacy_warned", False)
        from repro.serve.client import parse_hostport

        with pytest.warns(DeprecationWarning):
            assert parse_hostport("10.0.0.1") == ("10.0.0.1", 7790)


class TestAddressAllowlist:
    def test_empty_admits_everyone(self):
        assert AddressAllowlist().permits("203.0.113.9")
        assert not AddressAllowlist(["10.0.0.0/8"]).permits("203.0.113.9")

    def test_cidr_and_bare_ip(self):
        allow = AddressAllowlist(["10.8.0.0/16", "192.0.2.7"])
        assert allow.permits("10.8.3.4")
        assert allow.permits("192.0.2.7")
        assert not allow.permits("10.9.0.1")
        assert not allow.permits("192.0.2.8")

    def test_hostname_entry_resolves(self):
        allow = AddressAllowlist(["localhost"])
        assert allow.permits("127.0.0.1")
        assert not allow.permits("203.0.113.9")

    def test_garbage_peer_is_denied(self):
        assert not AddressAllowlist(["10.0.0.0/8"]).permits("not-an-ip")
