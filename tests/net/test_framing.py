"""The shared frame plumbing (``repro.net.framing``): both transports,
the counter vocabulary, the absurd-length guard, and the compatibility
re-exports the cluster module promises."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.net.framing import (
    FrameCounters,
    JsonLinesTransport,
    MAX_FRAME_BYTES,
    PickleFramer,
    WireProtocolError,
    recv_frame,
    send_frame,
)


@pytest.fixture
def sock_pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestRawFrames:
    def test_round_trip(self, sock_pair):
        left, right = sock_pair
        send_frame(left, ("hello", {"k": [1, 2, 3]}))
        assert recv_frame(right) == ("hello", {"k": [1, 2, 3]})

    def test_clean_eof_is_none(self, sock_pair):
        left, right = sock_pair
        left.close()
        assert recv_frame(right) is None

    def test_absurd_length_is_a_readable_error(self, sock_pair):
        """A TLS ClientHello read as a length prefix decodes to an
        astronomically large frame; the guard must refuse it instead of
        attempting the allocation."""
        left, right = sock_pair
        left.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1) + b"x" * 16)
        with pytest.raises(WireProtocolError, match="absurd"):
            recv_frame(right)


class TestPickleFramer:
    def test_round_trip_and_counters(self, sock_pair):
        left, right = sock_pair
        tx, rx = PickleFramer(left), PickleFramer(right)
        payload = {"blob": bytes(2048), "n": 7}
        tx.send(payload)
        assert rx.recv() == payload
        assert tx.frames_sent == 1 and rx.frames_received == 1
        assert tx.raw_sent > 0 and tx.wire_sent > 0
        assert rx.raw_received == tx.raw_sent
        assert rx.wire_received == tx.wire_sent

    def test_zlib_codec_shrinks_compressible_frames(self, sock_pair):
        left, right = sock_pair
        tx, rx = PickleFramer(left, codec="zlib"), PickleFramer(right)
        tx.send({"zeros": bytes(1 << 16)})
        rx.recv()
        assert tx.wire_sent < tx.raw_sent
        stats = rx.stats("zlib")
        assert stats["compression_ratio"] > 1.0

    def test_unknown_codec_name_refused(self, sock_pair):
        with pytest.raises(WireProtocolError, match="codec"):
            PickleFramer(sock_pair[0], codec="brotli")

    def test_unknown_codec_id_on_the_wire_refused(self, sock_pair):
        left, right = sock_pair
        left.sendall(struct.pack(">Q", 2) + bytes([250, 0]))
        with pytest.raises(WireProtocolError, match="codec id"):
            PickleFramer(right).recv()

    def test_absurd_length_guard(self, sock_pair):
        left, right = sock_pair
        left.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1))
        with pytest.raises(WireProtocolError, match="absurd"):
            PickleFramer(right).recv()


class TestJsonLinesTransport:
    def test_round_trip_and_uniform_counters(self, sock_pair):
        left, right = sock_pair
        tx, rx = JsonLinesTransport(left), JsonLinesTransport(right)
        tx.send_obj({"id": 1, "op": "ping"})
        assert rx.recv_obj() == {"id": 1, "op": "ping"}
        # Same vocabulary as the cluster framer, raw == wire (no codec).
        stats = rx.wire_stats()
        assert stats["codec"] == "none"
        assert stats["raw_received"] == stats["wire_received"] > 0
        assert set(FrameCounters.FIELDS) <= set(stats)

    def test_blank_lines_are_skipped_not_frames(self, sock_pair):
        left, right = sock_pair
        rx = JsonLinesTransport(right)
        left.sendall(b"\n\n{\"ok\":true}\n")
        assert rx.recv_obj() == {"ok": True}
        assert rx.frames_received == 1

    def test_non_json_line_is_a_readable_error(self, sock_pair):
        left, right = sock_pair
        rx = JsonLinesTransport(right)
        left.sendall(b"GET / HTTP/1.1\r\n")
        with pytest.raises(WireProtocolError, match="non-JSON"):
            rx.recv_obj()

    def test_clean_eof_is_none(self, sock_pair):
        left, right = sock_pair
        rx = JsonLinesTransport(right)
        left.close()
        assert rx.recv_obj() is None


class TestCompatibilityReexports:
    def test_cluster_module_reexports(self):
        """The extraction keeps every pre-refactor cluster name alive."""
        from repro.sim import cluster

        assert cluster.ClusterProtocolError is WireProtocolError
        assert cluster._Framer is PickleFramer
        assert cluster.recv_frame is recv_frame
        assert cluster.send_frame is send_frame

    def test_counters_absorb(self):
        a, b = FrameCounters(), FrameCounters()
        b.raw_sent = 5
        b.frames_received = 2
        a.absorb(b)
        a.absorb(b)
        assert a.raw_sent == 10 and a.frames_received == 4
