"""Security fault-injection drills for the cluster fabric.

Every rejection here must land *before any chunk is dispatched or
executed* (asserted via the worker's served-chunk counter) with a
readable error naming the cure — and the secured transport must change
no result bit: TLS + token runs merge identically to plaintext and to
the inline ``workers=1`` baseline, including under a mid-stream worker
kill."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.net import (
    Endpoint,
    NONCE_BYTES,
    client_proof,
    make_nonce,
    recv_frame,
    send_frame,
    server_ssl_context,
)
from repro.sim.cluster import (
    ClusterError,
    ClusterEvaluator,
    ClusterProtocolError,
    ClusterWorker,
    PROTOCOL_VERSION,
    _MAGIC,
)
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def steane_engine():
    return make_sampler(cached_protocol("steane"))


@pytest.fixture
def spin_worker():
    """Factory starting one in-process worker with arbitrary security
    knobs; returns ``(worker, connect_endpoint)``. All stopped at
    teardown."""
    started: list[ClusterWorker] = []

    def factory(
        token=None, tls_pair=None, cafile=None, allow=None, max_chunks=None
    ):
        listen = Endpoint(
            "127.0.0.1",
            0,
            tls=tls_pair is not None,
            certfile=tls_pair[0] if tls_pair else None,
            keyfile=tls_pair[1] if tls_pair else None,
        )
        worker = ClusterWorker(
            "127.0.0.1",
            0,
            token="" if token is None else token,
            ssl_context=server_ssl_context(listen),
            allow=allow,
            max_chunks=max_chunks,
        )
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        started.append(worker)
        connect = Endpoint(
            "127.0.0.1",
            worker.port,
            tls=tls_pair is not None,
            cafile=cafile if cafile is not None else (
                tls_pair[0] if tls_pair else None
            ),
        )
        return worker, connect

    yield factory
    for worker in started:
        worker.stop()


def _stratum(evaluator, shots=600, seed=11):
    merged = evaluator.reduce(evaluator.planner.plan_stratum(2, shots, seed))
    return (merged.trials, merged.failures)


def _fake_header(auth: bool) -> dict:
    """A syntactically valid hello header; auth runs before the digest
    is ever resolved, so the digest can be nonsense for auth drills."""
    return {
        "digest": "0" * 64,
        "max_slab": 16,
        "model": None,
        "codecs": ["none"],
        "auth": auth,
    }


class TestTokenFaultInjection:
    def test_wrong_token_rejected_before_any_chunk(
        self, steane_engine, spin_worker
    ):
        worker, endpoint = spin_worker(token="righttok")
        evaluator = ClusterEvaluator(
            steane_engine, [endpoint], max_slab=32, token="wrongtok"
        )
        with pytest.raises(ClusterProtocolError, match="does not verify"):
            _stratum(evaluator)
        assert worker._served == 0

    def test_tokenless_client_against_token_worker(
        self, steane_engine, spin_worker
    ):
        worker, endpoint = spin_worker(token="s3cret")
        evaluator = ClusterEvaluator(steane_engine, [endpoint], max_slab=32)
        with pytest.raises(
            ClusterProtocolError, match="requires a token"
        ):
            _stratum(evaluator)
        assert worker._served == 0

    def test_token_client_against_open_worker(
        self, steane_engine, spin_worker
    ):
        """One-sided the other way: the coordinator holds a token, the
        worker runs open — never ship work to a peer that cannot prove
        token knowledge."""
        worker, endpoint = spin_worker(token=None)
        evaluator = ClusterEvaluator(
            steane_engine, [endpoint], max_slab=32, token="s3cret"
        )
        with pytest.raises(ClusterProtocolError, match="runs open"):
            _stratum(evaluator)
        assert worker._served == 0

    def test_truncated_proof_rejected(self, spin_worker):
        worker, endpoint = spin_worker(token="s3cret")
        with socket.create_connection(endpoint.address, timeout=10) as sock:
            send_frame(
                sock, ("hello", _MAGIC, PROTOCOL_VERSION, _fake_header(True))
            )
            kind, server_nonce = recv_frame(sock)
            assert kind == "auth-challenge"
            client_nonce = make_nonce()
            proof = client_proof("s3cret", server_nonce, client_nonce)
            send_frame(sock, ("auth-proof", client_nonce, proof[:-1]))
            reply = recv_frame(sock)
            assert reply[0] == "reject" and "does not verify" in reply[1]
        assert worker._served == 0

    def test_malformed_nonce_rejected(self, spin_worker):
        worker, endpoint = spin_worker(token="s3cret")
        with socket.create_connection(endpoint.address, timeout=10) as sock:
            send_frame(
                sock, ("hello", _MAGIC, PROTOCOL_VERSION, _fake_header(True))
            )
            assert recv_frame(sock)[0] == "auth-challenge"
            send_frame(sock, ("auth-proof", b"short", b"junk"))
            reply = recv_frame(sock)
            assert reply[0] == "reject" and "auth-proof" in reply[1]
        assert worker._served == 0

    def test_replayed_proof_is_worthless(self, spin_worker):
        """A recorded (nonce, proof) pair from one connection must fail
        on the next: the server's nonce is fresh per connection."""
        worker, endpoint = spin_worker(token="s3cret")
        with socket.create_connection(endpoint.address, timeout=10) as sock:
            send_frame(
                sock, ("hello", _MAGIC, PROTOCOL_VERSION, _fake_header(True))
            )
            kind, first_nonce = recv_frame(sock)
            assert kind == "auth-challenge"
            recorded_nonce = make_nonce()
            recorded_proof = client_proof(
                "s3cret", first_nonce, recorded_nonce
            )
            send_frame(sock, ("auth-proof", recorded_nonce, recorded_proof))
            assert recv_frame(sock)[0] == "auth-ok"  # the original works
        with socket.create_connection(endpoint.address, timeout=10) as sock:
            send_frame(
                sock, ("hello", _MAGIC, PROTOCOL_VERSION, _fake_header(True))
            )
            kind, second_nonce = recv_frame(sock)
            assert kind == "auth-challenge"
            assert second_nonce != first_nonce
            send_frame(sock, ("auth-proof", recorded_nonce, recorded_proof))
            reply = recv_frame(sock)
            assert reply[0] == "reject" and "does not verify" in reply[1]
        assert worker._served == 0

    def test_right_token_works_and_advertises_auth(
        self, steane_engine, spin_worker
    ):
        _, endpoint = spin_worker(token="s3cret")
        with ShardedEvaluator(steane_engine, max_slab=32) as inline:
            baseline = _stratum(inline)
        with ClusterEvaluator(
            steane_engine, [endpoint], max_slab=32, token="s3cret"
        ) as cluster:
            assert _stratum(cluster) == baseline
            info = cluster._ensure_links()[0].info
            assert info["auth"] is True and info["tls"] is False
            stats = cluster.wire_stats()
            assert stats["auth"] is True
            assert stats["transport"] == "plaintext"

    def test_ambient_env_token_secures_both_sides(
        self, steane_engine, monkeypatch
    ):
        # token=None on both constructor paths -> both fall back to env.
        monkeypatch.setenv("REPRO_NET_TOKEN", "envtok")
        worker_env = ClusterWorker("127.0.0.1", 0)
        threading.Thread(
            target=worker_env.serve_forever, daemon=True
        ).start()
        try:
            assert worker_env._token == "envtok"
            with ClusterEvaluator(
                steane_engine,
                [Endpoint("127.0.0.1", worker_env.port)],
                max_slab=32,
            ) as cluster:
                trials, _ = _stratum(cluster)
                assert trials > 0
                assert cluster.wire_stats()["auth"] is True
        finally:
            worker_env.stop()


class TestTLSFaultInjection:
    def test_tls_client_against_plaintext_worker(
        self, steane_engine, spin_worker, tls_cert_pair
    ):
        worker, plain = spin_worker()
        endpoint = Endpoint(
            "127.0.0.1", plain.port, tls=True, cafile=tls_cert_pair[0]
        )
        evaluator = ClusterEvaluator(steane_engine, [endpoint], max_slab=32)
        with pytest.raises(
            ClusterProtocolError, match="TLS handshake failed"
        ):
            _stratum(evaluator)
        assert worker._served == 0

    def test_plaintext_client_against_tls_worker(
        self, steane_engine, spin_worker, tls_cert_pair
    ):
        worker, secure = spin_worker(tls_pair=tls_cert_pair)
        endpoint = Endpoint("127.0.0.1", secure.port)  # tls omitted
        evaluator = ClusterEvaluator(steane_engine, [endpoint], max_slab=32)
        with pytest.raises(
            (ClusterProtocolError, ClusterError), match="tls=1|reachable"
        ):
            _stratum(evaluator)
        assert worker._served == 0

    def test_tls_token_results_bit_identical_with_worker_kill(
        self, steane_engine, spin_worker, tls_cert_pair
    ):
        """The acceptance drill: a TLS + token cluster — including one
        worker that crashes mid-stream and forces the requeue path —
        merges bit-identically to plaintext and to inline."""
        with ShardedEvaluator(steane_engine, max_slab=32) as inline:
            baseline = _stratum(inline, shots=1500)
        _, healthy = spin_worker(token="s3cret", tls_pair=tls_cert_pair)
        _, dying = spin_worker(
            token="s3cret", tls_pair=tls_cert_pair, max_chunks=2
        )
        secure = [dying, healthy]
        with ClusterEvaluator(
            steane_engine, secure, max_slab=32, token="s3cret"
        ) as cluster:
            assert _stratum(cluster, shots=1500) == baseline
            stats = cluster.wire_stats()
            assert stats["transport"] == "tls" and stats["auth"] is True
        _, plain = spin_worker()
        with ClusterEvaluator(
            steane_engine, [plain], max_slab=32
        ) as plaintext:
            assert _stratum(plaintext, shots=1500) == baseline


class TestAllowlist:
    def test_peer_outside_allowlist_dropped_before_handshake(
        self, steane_engine, spin_worker
    ):
        worker, endpoint = spin_worker(allow=["203.0.113.0/24"])
        evaluator = ClusterEvaluator(steane_engine, [endpoint], max_slab=32)
        with pytest.raises((ClusterProtocolError, ClusterError)):
            _stratum(evaluator)
        assert worker._served == 0

    def test_loopback_allowlist_admits_local_coordinator(
        self, steane_engine, spin_worker
    ):
        _, endpoint = spin_worker(allow=["127.0.0.0/8"])
        with ShardedEvaluator(steane_engine, max_slab=32) as inline:
            baseline = _stratum(inline)
        with ClusterEvaluator(
            steane_engine, [endpoint], max_slab=32
        ) as cluster:
            assert _stratum(cluster) == baseline


class TestFactorySecurity:
    def test_factory_round_trips_endpoint_security(self, tls_cert_pair):
        """The figure4 spawn-pool pickle path: a factory built from
        endpoint specs must carry TLS/token fields through its rendered
        (picklable) address strings."""
        import pickle

        from repro.sim.cluster import ClusterExecutorFactory

        spec = (
            f"127.0.0.1:7781?tls=1&cafile={tls_cert_pair[0]}&token=s3cret"
        )
        factory = ClusterExecutorFactory((spec,))
        thawed = pickle.loads(pickle.dumps(factory))
        from repro.net import parse_endpoint

        ep = parse_endpoint(thawed.addresses[0], use_env=False)
        assert ep.tls and ep.cafile == tls_cert_pair[0]
        assert ep.token == "s3cret"

    def test_nonce_sizes_documented_by_protocol(self):
        assert NONCE_BYTES == 32
