"""Security fault-injection drills for the ``repro serve`` daemon.

Mirror of ``test_secure_cluster.py`` one stack over: every rejection
must land *before any request is normalized or computed* (asserted via
the daemon's request/compute counters and ``auth_failures``), and
TLS + token answers must be bit-identical to plaintext ones."""

from __future__ import annotations

import socket
import time

import pytest

from repro.net import (
    Endpoint,
    JsonLinesTransport,
    client_proof,
    make_nonce,
    server_ssl_context,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer
from repro.store import keys as store_keys

from ..conftest import cached_protocol

SWEEP_PARAMS = dict(shots=600, k_max=2, seed=5, sweep=[1e-3, 1e-2])


def _prewarm(server: ReproServer) -> None:
    protocol = cached_protocol("steane")
    server._protocols[("steane", "heuristic", "optimal")] = (
        protocol,
        store_keys.protocol_digest(protocol),
    )


@pytest.fixture
def spin_server(tmp_path):
    """Factory starting one in-process daemon with arbitrary security
    knobs; returns ``(server, connect_endpoint)``."""
    started: list[ReproServer] = []
    roots = iter(range(1000))

    def factory(token=None, tls_pair=None, allow=None, ledger=False):
        listen = Endpoint(
            "127.0.0.1",
            0,
            tls=tls_pair is not None,
            certfile=tls_pair[0] if tls_pair else None,
            keyfile=tls_pair[1] if tls_pair else None,
        )
        server = ReproServer(
            "127.0.0.1",
            0,
            ledger=(tmp_path / f"ledger{next(roots)}") if ledger else False,
            token="" if token is None else token,
            ssl_context=server_ssl_context(listen),
            allow=allow,
        )
        _prewarm(server)
        server.start_background()
        started.append(server)
        connect = Endpoint(
            "127.0.0.1",
            server.port,
            tls=tls_pair is not None,
            cafile=tls_pair[0] if tls_pair else None,
        )
        return server, connect

    yield factory
    for server in started:
        server.stop()


class TestTokenFaultInjection:
    def test_wrong_token_refused_before_any_request(self, spin_server):
        server, endpoint = spin_server(token="righttok")
        with pytest.raises(ServeError, match="does not verify"):
            ServeClient(endpoint.render() + "?token=wrongtok")
        assert server.stats.requests == 0
        assert server.stats.computes == 0
        assert server.stats.auth_failures == 1

    def test_tokenless_client_against_token_daemon(self, spin_server):
        server, endpoint = spin_server(token="s3cret")
        with pytest.raises(ServeError, match="requires a token"):
            ServeClient(endpoint)
        assert server.stats.requests == 0

    def test_token_client_against_open_daemon(self, spin_server):
        server, endpoint = spin_server(token=None)
        with pytest.raises(ServeError, match="runs without a token"):
            ServeClient(endpoint, token="s3cret")
        assert server.stats.requests == 0

    def test_truncated_proof_refused(self, spin_server):
        server, endpoint = spin_server(token="s3cret")
        sock = socket.create_connection(endpoint.address, timeout=10)
        transport = JsonLinesTransport(sock)
        try:
            greeting = transport.recv_obj()
            assert greeting["auth"] is True
            server_nonce = bytes.fromhex(greeting["nonce"])
            client_nonce = make_nonce()
            proof = client_proof("s3cret", server_nonce, client_nonce)
            transport.send_obj(
                {
                    "op": "auth",
                    "nonce": client_nonce.hex(),
                    "proof": proof.hex()[:-2],
                }
            )
            reply = transport.recv_obj()
            assert reply["event"] == "error"
            assert "does not verify" in reply["error"]
            assert transport.recv_obj() is None  # connection closed
        finally:
            transport.close()
        assert server.stats.requests == 0
        assert server.stats.auth_failures == 1

    def test_replayed_proof_is_worthless(self, spin_server):
        server, endpoint = spin_server(token="s3cret")

        def open_transport():
            sock = socket.create_connection(endpoint.address, timeout=10)
            transport = JsonLinesTransport(sock)
            greeting = transport.recv_obj()
            return transport, bytes.fromhex(greeting["nonce"])

        first, first_nonce = open_transport()
        recorded_nonce = make_nonce()
        recorded_proof = client_proof("s3cret", first_nonce, recorded_nonce)
        first.send_obj(
            {
                "op": "auth",
                "nonce": recorded_nonce.hex(),
                "proof": recorded_proof.hex(),
            }
        )
        assert first.recv_obj()["event"] == "auth-ok"  # the original works
        first.close()

        second, second_nonce = open_transport()
        assert second_nonce != first_nonce
        second.send_obj(
            {
                "op": "auth",
                "nonce": recorded_nonce.hex(),
                "proof": recorded_proof.hex(),
            }
        )
        reply = second.recv_obj()
        second.close()
        assert reply["event"] == "error"
        assert "does not verify" in reply["error"]
        assert server.stats.requests == 0

    def test_request_line_before_auth_is_refused(self, spin_server):
        """A peer that skips the handshake and fires a request anyway
        must be refused without the op ever executing."""
        server, endpoint = spin_server(token="s3cret")
        sock = socket.create_connection(endpoint.address, timeout=10)
        transport = JsonLinesTransport(sock)
        try:
            transport.recv_obj()  # greeting
            transport.send_obj({"id": 1, "op": "shutdown"})
            reply = transport.recv_obj()
            assert reply["event"] == "error"
            assert transport.recv_obj() is None
        finally:
            transport.close()
        assert server.stats.requests == 0
        assert server._stop_event is None or not server._stop_event.is_set()

    def test_right_token_and_ambient_env(self, spin_server, monkeypatch):
        server, endpoint = spin_server(token="s3cret")
        with ServeClient(endpoint, token="s3cret") as client:
            assert client.ping()["ok"] is True
            stats = client.stats()
            assert stats["auth"] is True
        monkeypatch.setenv("REPRO_NET_TOKEN", "s3cret")
        with ServeClient(endpoint) as client:  # token resolved from env
            assert client.ping()["ok"] is True


class TestTLSFaultInjection:
    def test_tls_client_against_plaintext_daemon(self, spin_server, tls_cert_pair):
        server, plain = spin_server()
        endpoint = Endpoint(
            "127.0.0.1", plain.port, tls=True, cafile=tls_cert_pair[0]
        )
        with pytest.raises((ServeError, ConnectionError)):
            ServeClient(endpoint, connect_timeout=5.0)
        # The plaintext daemon sees the ClientHello as malformed request
        # lines — counted as errors, never as work.
        assert server.stats.computes == 0
        assert server.stats.errors == server.stats.requests

    def test_plaintext_client_against_tls_daemon(self, spin_server, tls_cert_pair):
        server, secure = spin_server(tls_pair=tls_cert_pair)
        endpoint = Endpoint("127.0.0.1", secure.port)  # tls omitted
        with pytest.raises((ServeError, ConnectionError), match="tls=1|greeting"):
            ServeClient(endpoint, connect_timeout=5.0)
        assert server.stats.requests == 0

    def test_tls_token_answers_bit_identical_to_plaintext(
        self, spin_server, tls_cert_pair
    ):
        """The acceptance drill: the same sweep over TLS + token and
        over an open plaintext daemon, byte-for-byte equal payloads."""
        _, secure = spin_server(token="s3cret", tls_pair=tls_cert_pair)
        _, plain = spin_server()
        with ServeClient(secure, token="s3cret") as client:
            over_tls = client.request("sweep", code="steane", **SWEEP_PARAMS)
            assert client.stats()["transport"] == "tls"
        with ServeClient(plain) as client:
            over_plain = client.request("sweep", code="steane", **SWEEP_PARAMS)
            assert client.stats()["transport"] == "plaintext"
        assert over_tls["result"] == over_plain["result"]


class TestAllowlist:
    def test_peer_outside_allowlist_dropped_before_greeting(self, spin_server):
        server, endpoint = spin_server(allow=["203.0.113.0/24"])
        with pytest.raises((ServeError, ConnectionError, OSError)):
            ServeClient(endpoint, connect_timeout=5.0)
        assert server.stats.requests == 0
        assert server.stats.auth_failures >= 1

    def test_loopback_allowlist_admits_local_client(self, spin_server):
        _, endpoint = spin_server(allow=["127.0.0.0/8", "localhost"])
        with ServeClient(endpoint) as client:
            assert client.ping()["ok"] is True


class TestConnectTimeout:
    def test_connect_timeout_is_distinct_from_request_timeout(self):
        """Cluster semantics: ``connect_timeout`` bounds the greeting
        wait; a silent listener fails fast even when the request
        ``timeout`` is generous."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            start = time.monotonic()
            with pytest.raises(ServeError, match="no greeting"):
                ServeClient(
                    "127.0.0.1",
                    silent.getsockname()[1],
                    timeout=600.0,
                    connect_timeout=0.5,
                )
            assert time.monotonic() - start < 5.0
        finally:
            silent.close()
