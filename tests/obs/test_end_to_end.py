"""End-to-end observability contracts (the PR's acceptance criteria).

* A ``--trace`` run of ``figure4 --cluster`` produces **one stitched
  JSONL trace** spanning the CLI root, the planner, every cluster
  worker that executed chunks, the merge, and the ledger put — and the
  traced run is bit-identical to the same run untraced.
* A cluster worker killed mid-stream (fault-injection drill) leaves a
  **well-formed** trace: the lost dispatches appear as
  ``status="requeued"`` records, the retries are siblings under the
  same ``cluster.map`` span on a surviving worker, and nothing orphans.
* The serve daemon ships its spans back to a traced client, exposes the
  metrics registry through ``stats``/``metrics``, and the registry keeps
  operator-visible counters monotone across daemon restarts.
"""

import re
import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.obs.summary import load_trace, verify_trace
from repro.obs.trace import trace_command
from repro.sim.cluster import ClusterEvaluator, ClusterWorker
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator

from ..conftest import cached_protocol


@pytest.fixture
def spin_workers():
    """In-process ``ClusterWorker`` servers on real localhost sockets."""
    started: list[ClusterWorker] = []

    def factory(count: int = 2, **kwargs) -> list[tuple[str, int]]:
        workers = [
            ClusterWorker("127.0.0.1", 0, **kwargs) for _ in range(count)
        ]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        started.extend(workers)
        return [worker.address for worker in workers]

    yield factory
    for worker in started:
        worker.stop()


def _strip_timings(text: str) -> str:
    """Wall-clock fragments out of the render (the only nondeterminism)."""
    return re.sub(r"\d+\.\d+s", "Ts", text)


class TestTracedFigure4Cluster:
    def test_one_stitched_trace_and_bit_identical_output(
        self, spin_workers, tmp_path, monkeypatch, capsys
    ):
        cached_protocol("steane")  # warm the synthesis cache
        addresses = spin_workers(2)
        cluster_arg = ",".join(f"{host}:{port}" for host, port in addresses)
        trace_path = tmp_path / "figure4.jsonl"
        # Small slab -> many chunks, so the credit scheduler feeds both
        # workers; fresh ledger roots per run so neither run replays.
        base = [
            "figure4",
            "--codes",
            "steane",
            "--shots",
            "400",
            "--max-slab",
            "16",
            "--cluster",
            cluster_arg,
        ]
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger-traced"))
        assert cli_main(base + ["--trace", str(trace_path)]) == 0
        traced_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger-plain"))
        assert cli_main(base) == 0
        untraced_out = capsys.readouterr().out

        # Determinism: identical output modulo wall-clock fragments
        # (which differ between two *untraced* runs too).
        assert _strip_timings(traced_out) == _strip_timings(untraced_out)

        spans = load_trace(trace_path)
        report = verify_trace(spans)
        assert report["ok"], report["errors"]
        assert report["roots"] == ["repro.figure4"]
        names = {record["name"] for record in spans}
        assert {
            "repro.figure4",
            "figure4.series",
            "plan",
            "cluster.map",
            "cluster.dispatch",
            "cluster.chunk",
            "merge",
            "ledger.put",
        } <= names
        # Every worker that executed chunks is in the trace, by address;
        # with ~25+ chunks across the strata both workers participate.
        chunk_workers = {
            record["attrs"]["worker"]
            for record in spans
            if record["name"] == "cluster.chunk"
        }
        assert chunk_workers == {
            f"{host}:{port}" for host, port in addresses
        }
        # Worker-side spans parent into the coordinator's tree: every
        # cluster.chunk hangs off a span that exists in this trace (the
        # orphan check above already guarantees it — make it explicit).
        ids = {record["span"] for record in spans}
        assert all(
            record["parent"] in ids
            for record in spans
            if record["name"] == "cluster.chunk"
        )


class TestTracedFaultInjection:
    def test_worker_kill_mid_stream_leaves_wellformed_trace(
        self, spin_workers, tmp_path
    ):
        """The drill from the cluster suite, traced: the dying worker's
        lost dispatches become ``requeued`` records, the retries land as
        siblings under the same map span, and the result stays
        bit-identical to the inline baseline."""
        engine = make_sampler(cached_protocol("steane"))
        (survivor,) = spin_workers(1)
        (dying,) = spin_workers(1, max_chunks=2)
        inline = ShardedEvaluator(engine, max_slab=16)
        baseline = inline.reduce(
            inline.planner.plan_rows(checkable_only=True, threshold=1)
        )
        trace_path = tmp_path / "drill.jsonl"
        with trace_command(trace_path, "repro.test"):
            with ClusterEvaluator(
                engine, [dying, survivor], max_slab=16
            ) as evaluator:
                merged = evaluator.reduce(
                    evaluator.planner.plan_rows(
                        checkable_only=True, threshold=1
                    )
                )
        assert merged.trials == baseline.trials
        np.testing.assert_array_equal(merged.rows, baseline.rows)

        spans = load_trace(trace_path)
        report = verify_trace(spans)
        assert report["ok"], report["errors"]  # crash left no orphans

        (map_record,) = [r for r in spans if r["name"] == "cluster.map"]
        assert map_record["attrs"]["requeues"] >= 1
        dispatches = [r for r in spans if r["name"] == "cluster.dispatch"]
        # Every dispatch — lost and retried — is a sibling under the map.
        assert all(r["parent"] == map_record["span"] for r in dispatches)
        requeued = [r for r in dispatches if r["status"] == "requeued"]
        assert requeued
        succeeded = [r for r in dispatches if r["status"] == "ok"]
        for lost in requeued:
            retries = [
                r
                for r in succeeded
                if r["attrs"]["index"] == lost["attrs"]["index"]
            ]
            assert retries, f"chunk {lost['attrs']['index']} never retried"
            assert all(
                r["attrs"]["worker"] != lost["attrs"]["worker"]
                for r in retries
            )
        # The dead worker shipped no span for its dropped in-flight
        # chunk: each executed chunk index appears at most once per
        # worker address.
        seen = [
            (r["attrs"]["worker"], r["attrs"]["index"])
            for r in spans
            if r["name"] == "cluster.chunk"
        ]
        assert len(seen) == len(set(seen))
