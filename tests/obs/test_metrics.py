"""Unit tests for the ``repro.obs.metrics`` registry.

The registry is process-local and process-lifetime; these tests build
private :class:`MetricsRegistry` instances so they never depend on (or
perturb) whatever the rest of the suite has counted globally.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("store.hits")
        counter.inc()
        counter.inc(4)
        assert registry.counter("store.hits").value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("serve.inflight")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert registry.gauge("serve.inflight").value == 2

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("chunk_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1"] == 2  # bounds render via format(x, "g")
        assert snap["buckets"]["+Inf"] == 3

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("c.seconds").observe(0.2)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise
        assert snap["b.count"] == 2
        assert snap["a.level"] == 1.5
        assert snap["c.seconds"]["count"] == 1


class TestPrometheus:
    def test_render_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("store.hits").inc(3)
        registry.gauge("serve.engines").set(2)
        registry.histogram("shard.chunk_seconds", buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        assert "# TYPE repro_store_hits counter" in text
        assert "repro_store_hits 3" in text
        assert "repro_serve_engines 2" in text
        assert 'repro_shard_chunk_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_shard_chunk_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_shard_chunk_seconds_count 1" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("cluster.wire.raw-sent").inc()
        text = registry.render_prometheus()
        assert "repro_cluster_wire_raw_sent 1" in text


class TestGlobalRegistry:
    def test_instrumented_layers_share_one_registry(self):
        assert get_registry() is get_registry()

    def test_wire_counters_publish(self):
        from repro.net.framing import FrameCounters, publish_wire_counters

        counters = FrameCounters()
        counters.raw_sent = 100
        counters.frames_sent = 3
        before = get_registry().counter("test.wire.raw_sent").value
        publish_wire_counters(counters, "test.wire")
        after = get_registry().counter("test.wire.raw_sent").value
        assert after - before == 100
        # Zero-valued fields never materialize spurious counters.
        publish_wire_counters(FrameCounters(), "test.zero")
        assert "test.zero.raw_sent" not in get_registry().snapshot()
