"""Serve-daemon observability: shipped spans, ``metrics`` op, and
registry-backed counters that survive daemon restarts (the operator
numbers must never zero when the object holding them goes away)."""

import os

import pytest

from repro.obs.metrics import get_registry
from repro.obs.summary import verify_trace
from repro.obs.trace import BufferSink, Tracer, trace_command
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.store import keys as store_keys

from ..conftest import cached_protocol

SWEEP = dict(shots=400, k_max=2, seed=5, sweep=[1e-3])


def _server(ledger_root) -> ReproServer:
    instance = ReproServer("127.0.0.1", 0, ledger=ledger_root)
    protocol = cached_protocol("steane")
    instance._protocols[("steane", "heuristic", "optimal")] = (
        protocol,
        store_keys.protocol_digest(protocol),
    )
    instance.start_background()
    return instance


@pytest.fixture
def server(tmp_path):
    instance = _server(tmp_path / "ledger")
    yield instance
    instance.stop()


class TestTracedQueries:
    def test_computed_query_ships_daemon_spans(self, server, tmp_path):
        trace_path = tmp_path / "query.jsonl"
        with trace_command(trace_path, "repro.query"):
            with ServeClient(server.host, server.port) as client:
                line = client.sweep("steane", **SWEEP)
        assert line["source"] == "computed"
        spans = trace_path.read_text().splitlines()
        import json

        records = [json.loads(s) for s in spans]
        report = verify_trace(records)
        assert report["ok"], report["errors"]
        names = {r["name"] for r in records}
        # Client-side query span, daemon-side compute span, and the
        # compute's interior (sharded evaluation) all in one tree.
        assert {"repro.query", "query.sweep", "serve.sweep"} <= names
        assert {"plan", "shard.chunk", "merge"} <= names
        (serve_span,) = [r for r in records if r["name"] == "serve.sweep"]
        assert serve_span["attrs"]["source"] == "computed"
        (query_span,) = [r for r in records if r["name"] == "query.sweep"]
        assert serve_span["parent"] == query_span["span"]

    def test_ledger_hit_and_control_ops_ship_spans(self, server, tmp_path):
        import json

        with ServeClient(server.host, server.port) as client:
            client.sweep("steane", **SWEEP)  # populate the ledger
        trace_path = tmp_path / "warm.jsonl"
        with trace_command(trace_path, "repro.query"):
            with ServeClient(server.host, server.port) as client:
                warm = client.sweep("steane", **SWEEP)
                client.ping()
        assert warm["source"] == "ledger"
        records = [
            json.loads(s) for s in trace_path.read_text().splitlines()
        ]
        assert verify_trace(records)["ok"]
        by_name = {r["name"]: r for r in records}
        assert by_name["serve.sweep"]["attrs"]["source"] == "ledger"
        assert "serve.ping" in by_name

    def test_untraced_requests_carry_no_trace_field(self, server):
        with ServeClient(server.host, server.port) as client:
            line = client.sweep("steane", **SWEEP)
        assert "trace" not in line

    def test_traced_and_untraced_results_identical(self, server, tmp_path):
        with ServeClient(server.host, server.port) as client:
            plain = client.sweep("steane", **SWEEP)
        with trace_command(tmp_path / "t.jsonl", "repro.query"):
            with ServeClient(server.host, server.port) as client:
                traced = client.sweep("steane", **SWEEP)
        # Same ledger key, same payload — tracing never perturbs results
        # (the trace context rides outside params, so the keys match).
        assert traced["key"] == plain["key"]
        assert traced["result"] == plain["result"]


class TestMetricsSurfaces:
    def test_stats_carries_the_registry(self, server):
        with ServeClient(server.host, server.port) as client:
            client.sweep("steane", **SWEEP)
            stats = client.stats()
        metrics = stats["metrics"]
        assert metrics["serve.computes"] == stats["computes"] == 1
        assert metrics["serve.requests"] >= 1
        assert metrics["ledger.puts"] >= 1
        assert metrics["shard.chunks"] >= 1
        assert metrics["shard.chunk_seconds"]["count"] >= 1

    def test_metrics_op_renders_prometheus(self, server):
        with ServeClient(server.host, server.port) as client:
            client.sweep("steane", **SWEEP)
            result = client.metrics()
        assert result["content_type"].startswith("text/plain; version=0.0.4")
        text = result["exposition"]
        assert "# TYPE repro_serve_computes gauge" in text
        assert "repro_serve_computes 1" in text
        assert "# TYPE repro_ledger_puts counter" in text
        assert "repro_shard_chunk_seconds_bucket" in text

    def test_counters_survive_daemon_restart(self, tmp_path):
        """The satellite fix: ledger/store counters live in the
        process registry, so a daemon restart (new ServeStats, new
        ledger instance) never zeroes the operator-visible numbers."""
        ledger_root = tmp_path / "ledger"
        first = _server(ledger_root)
        try:
            with ServeClient(first.host, first.port) as client:
                client.sweep("steane", **SWEEP)
                puts_after_compute = client.stats()["metrics"]["ledger.puts"]
        finally:
            first.stop()
        second = _server(ledger_root)
        try:
            with ServeClient(second.host, second.port) as client:
                warm = client.sweep("steane", **SWEEP)
                stats = client.stats()
        finally:
            second.stop()
        assert warm["source"] == "ledger"
        assert stats["computes"] == 0  # the instance counters reset...
        metrics = stats["metrics"]
        # ...but the registry only ever moves forward.
        assert metrics["ledger.puts"] >= puts_after_compute
        assert metrics["ledger.hits"] >= 1


class TestDeterminismContract:
    def test_tracing_draws_no_numpy_entropy(self):
        """Span ids come from os.urandom: opening spans must not advance
        any seeded RNG stream."""
        import numpy as np

        rng = np.random.default_rng(7)
        before = rng.bit_generator.state
        tracer = Tracer(BufferSink())
        with tracer.span("a", pid=os.getpid()):
            with tracer.span("b"):
                pass
        assert rng.bit_generator.state == before
        registry = get_registry()
        registry.counter("determinism.probe").inc()
        registry.histogram("determinism.seconds").observe(0.1)
        assert rng.bit_generator.state == before
