"""Unit tests for ``repro.obs.trace`` and the summarize/verify layer."""

import json
import os

import pytest

from repro.obs import trace as trace_mod
from repro.obs.summary import (
    load_trace,
    render_summary,
    summarize_trace,
    verify_trace,
)
from repro.obs.trace import (
    BufferSink,
    FileSink,
    Tracer,
    buffering_tracer,
    current_tracer,
    new_span_id,
    propagation_context,
    span,
    trace_command,
)


@pytest.fixture(autouse=True)
def clean_ambient(monkeypatch):
    """No test leaks a tracer (contextvar) or trace env into the next."""
    monkeypatch.delenv(trace_mod.TRACE_ENV, raising=False)
    monkeypatch.delenv(trace_mod.TRACE_CTX_ENV, raising=False)
    token = trace_mod._TRACER.set(None)
    yield
    trace_mod._TRACER.reset(token)


class TestSpans:
    def test_children_close_before_parents_root_last(self):
        sink = BufferSink()
        tracer = Tracer(sink)
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        names = [r["name"] for r in sink.records]
        assert names == ["grandchild", "child", "root"]
        by_name = {r["name"]: r for r in sink.records}
        assert by_name["root"]["parent"] is None
        assert by_name["child"]["parent"] == by_name["root"]["span"]
        assert by_name["grandchild"]["parent"] == by_name["child"]["span"]
        assert all(r["trace"] == tracer.trace_id for r in sink.records)

    def test_attrs_and_late_set(self):
        sink = BufferSink()
        tracer = Tracer(sink)
        with tracer.span("plan", backend="shard") as handle:
            handle.set(chunks=7)
        (record,) = sink.records
        assert record["attrs"] == {"backend": "shard", "chunks": 7}

    def test_exception_marks_status_error_and_still_emits(self):
        sink = BufferSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (record,) = sink.records
        assert record["status"] == "error"

    def test_module_span_is_noop_without_tracer(self):
        with span("anything", key="value") as handle:
            assert handle.span_id is None  # the shared null handle

    def test_record_fabricates_closed_span_with_preallocated_id(self):
        sink = BufferSink()
        tracer = Tracer(sink)
        span_id = new_span_id()
        returned = tracer.record(
            "cluster.map",
            span_id=span_id,
            start_wall=123.0,
            duration=0.5,
            parent=None,
            workers=2,
        )
        assert returned == span_id
        (record,) = sink.records
        assert record["span"] == span_id
        assert record["ts"] == 123.0
        assert record["dur"] == 0.5
        assert record["attrs"] == {"workers": 2}

    def test_ingest_filters_foreign_traces(self):
        sink = BufferSink()
        tracer = Tracer(sink)
        tracer.ingest(
            [
                {"trace": tracer.trace_id, "span": "aa", "name": "mine"},
                {"trace": "somebody-else", "span": "bb", "name": "theirs"},
                "not even a dict",
            ]
        )
        assert [r["name"] for r in sink.records] == ["mine"]


class TestPropagation:
    def test_propagation_context_carries_trace_and_active_span(self):
        tracer = Tracer(BufferSink())
        token = trace_mod._TRACER.set(tracer)
        try:
            with tracer.span("outer") as handle:
                ctx = propagation_context()
                assert ctx == {"id": tracer.trace_id, "parent": handle.span_id}
        finally:
            trace_mod._TRACER.reset(token)

    def test_buffering_tracer_parents_under_context(self):
        remote = buffering_tracer({"id": "cafe", "parent": "feed"})
        with remote.span("cluster.chunk"):
            pass
        (record,) = remote.sink.drain()
        assert record["trace"] == "cafe"
        assert record["parent"] == "feed"
        assert remote.sink.records == []  # drained

    def test_buffering_tracer_rejects_malformed_context(self):
        assert buffering_tracer(None) is None
        assert buffering_tracer("not-a-dict") is None
        assert buffering_tracer({"parent": "x"}) is None

    def test_child_process_self_install_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv(trace_mod.TRACE_ENV, str(path))
        monkeypatch.setenv(trace_mod.TRACE_CTX_ENV, "abcd:ef01")
        tracer = current_tracer()
        assert tracer is not None
        assert tracer.trace_id == "abcd"
        with span("shard.chunk", index=0):
            pass
        (record,) = load_trace(path)
        assert record["trace"] == "abcd"
        assert record["parent"] == "ef01"

    def test_trace_command_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "/elsewhere.jsonl")
        path = tmp_path / "trace.jsonl"
        with trace_command(path, "repro.test"):
            assert os.environ[trace_mod.TRACE_ENV] == str(path)
            assert ":" in os.environ[trace_mod.TRACE_CTX_ENV]
        assert os.environ[trace_mod.TRACE_ENV] == "/elsewhere.jsonl"
        assert trace_mod.TRACE_CTX_ENV not in os.environ
        records = load_trace(path)
        assert [r["name"] for r in records] == ["repro.test"]


class TestFileSink:
    def test_appends_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = FileSink(path)
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["trace"] == tracer.trace_id for line in lines)


def _closed_trace():
    """A small well-formed trace (root + two children, two pids)."""
    sink = BufferSink()
    tracer = Tracer(sink)
    with tracer.span("repro.test"):
        with tracer.span("plan", chunks=2):
            pass
        with tracer.span("merge"):
            pass
    records = sink.drain()
    records[0]["pid"] = records[0]["pid"] + 1  # simulate a second process
    return records


class TestVerify:
    def test_clean_trace_verifies(self):
        report = verify_trace(_closed_trace())
        assert report["ok"], report["errors"]
        assert report["spans"] == 3
        assert report["roots"] == ["repro.test"]
        assert report["processes"] == 2

    def test_orphan_detected(self):
        records = _closed_trace()
        records[0]["parent"] = "feedfacedeadbeef"  # nonexistent parent
        report = verify_trace(records)
        assert not report["ok"]
        assert any("orphan" in error for error in report["errors"])

    def test_unclosed_span_detected(self):
        records = _closed_trace()
        records[1]["dur"] = None  # a span that never closed cleanly
        report = verify_trace(records)
        assert not report["ok"]
        assert any("unclosed" in error for error in report["errors"])
        del records[1]["dur"]
        report = verify_trace(records)
        assert not report["ok"]
        assert any("dur" in error for error in report["errors"])

    def test_duplicate_ids_and_multiple_traces_detected(self):
        records = _closed_trace()
        records[1]["span"] = records[0]["span"]
        report = verify_trace(records)
        assert not report["ok"]
        foreign = dict(records[2], trace="another-trace")
        report = verify_trace(_closed_trace() + [foreign])
        assert not report["ok"]

    def test_empty_trace_is_not_ok(self):
        assert not verify_trace([])["ok"]


class TestSummary:
    def test_phases_and_critical_path(self):
        records = _closed_trace()
        summary = summarize_trace(records)
        assert set(summary["phases"]) == {"repro.test", "plan", "merge"}
        assert summary["phases"]["plan"]["count"] == 1
        path_names = [record["name"] for record in summary["critical_path"]]
        assert path_names[0] == "repro.test"
        text = render_summary(records)
        assert "repro.test" in text
        assert "critical path" in text
