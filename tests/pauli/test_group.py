"""Unit tests for coset-weight machinery (the paper's wt_S)."""

import numpy as np
import pytest

from repro.codes.catalog import steane_code
from repro.pauli.group import CosetReducer
from repro.pauli.symplectic import as_bit_matrix, span_matrix


class TestCosetReducer:
    def test_trivial_group_weight_is_plain_weight(self):
        reducer = CosetReducer(as_bit_matrix([], 5), 5)
        assert reducer.coset_weight([1, 1, 0, 1, 0]) == 3

    def test_group_element_has_weight_zero(self):
        reducer = CosetReducer(["1100", "0011"])
        assert reducer.coset_weight([1, 1, 1, 1]) == 0

    def test_reduce_returns_min_weight_member(self):
        reducer = CosetReducer(["1110"])
        rep = reducer.reduce([1, 1, 0, 0])
        assert rep.sum() == reducer.coset_weight([1, 1, 0, 0]) == 1

    def test_reduce_stays_in_coset(self):
        rng = np.random.default_rng(0)
        basis = rng.integers(0, 2, size=(3, 7), dtype=np.uint8)
        reducer = CosetReducer(basis)
        span = {row.tobytes() for row in span_matrix(basis)}
        for _ in range(20):
            vec = rng.integers(0, 2, size=7, dtype=np.uint8)
            rep = reducer.reduce(vec)
            assert (rep ^ vec).tobytes() in span

    def test_canonical_identifies_cosets(self):
        reducer = CosetReducer(["1100"])
        assert reducer.canonical([1, 0, 0, 0]) == reducer.canonical([0, 1, 0, 0])
        assert reducer.canonical([1, 0, 0, 0]) != reducer.canonical([0, 0, 1, 0])

    def test_canonical_invariant_under_group_action(self):
        rng = np.random.default_rng(1)
        basis = rng.integers(0, 2, size=(3, 6), dtype=np.uint8)
        reducer = CosetReducer(basis)
        vec = rng.integers(0, 2, size=6, dtype=np.uint8)
        for g in span_matrix(basis):
            assert reducer.canonical(vec ^ g) == reducer.canonical(vec)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(2)
        basis = rng.integers(0, 2, size=(3, 6), dtype=np.uint8)
        reducer = CosetReducer(basis)
        mat = rng.integers(0, 2, size=(10, 6), dtype=np.uint8)
        batch = reducer.coset_weights_batch(mat)
        for row, w in zip(mat, batch):
            assert reducer.coset_weight(row) == w

    def test_batch_empty(self):
        reducer = CosetReducer(["11"])
        assert reducer.coset_weights_batch(as_bit_matrix([], 2)).shape == (0,)

    def test_contains(self):
        reducer = CosetReducer(["1100", "0110"])
        assert reducer.contains([1, 0, 1, 0])  # sum of the two rows
        assert not reducer.contains([1, 0, 0, 0])

    def test_zero_always_contained(self):
        reducer = CosetReducer(["101"])
        assert reducer.contains([0, 0, 0])

    def test_rank_reported(self):
        reducer = CosetReducer(["110", "011", "101"])  # dependent
        assert reducer.rank == 2


class TestSteaneWtS:
    """Paper Example 1/2: stabilizer-equivalence on the Steane code."""

    def setup_method(self):
        self.code = steane_code()

    def test_x_stabilizer_has_weight_zero(self):
        reducer = self.code.x_error_reducer()
        for row in self.code.hx:
            assert reducer.coset_weight(row) == 0

    def test_single_x_error_weight_one(self):
        reducer = self.code.x_error_reducer()
        for q in range(7):
            vec = np.zeros(7, dtype=np.uint8)
            vec[q] = 1
            assert reducer.coset_weight(vec) == 1

    def test_weight_two_errors_irreducible(self):
        # d=3: no weight-2 X error is stabilizer-equivalent to weight <= 1,
        # unless it differs from a stabilizer by one qubit... for Steane,
        # stabilizers have weight 4, so weight-2 errors stay weight 2.
        reducer = self.code.x_error_reducer()
        vec = np.zeros(7, dtype=np.uint8)
        vec[[0, 1]] = 1
        assert reducer.coset_weight(vec) == 2

    def test_logical_z_reduces_on_zero_state(self):
        # On |0>_L the Z reducer includes logical Z: Z_L itself is harmless.
        z_reducer = self.code.z_error_reducer()
        for row in self.code.logical_z:
            assert z_reducer.coset_weight(row) == 0

    def test_logical_z_not_in_plain_stabilizer(self):
        plain = CosetReducer(self.code.hz, 7)
        for row in self.code.logical_z:
            assert plain.coset_weight(row) > 0
