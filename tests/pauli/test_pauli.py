"""Unit tests for phase-free Pauli operators."""

import numpy as np
import pytest

from repro.pauli.pauli import Pauli


class TestConstruction:
    def test_identity(self):
        p = Pauli.identity(4)
        assert p.is_identity()
        assert p.weight() == 0
        assert p.label() == "IIII"

    def test_from_label_roundtrip(self):
        for label in ("XIZY", "IIII", "YYYY", "XZ"):
            assert Pauli.from_label(label).label() == label

    def test_from_label_lowercase(self):
        assert Pauli.from_label("xz").label() == "XZ"

    def test_from_label_invalid(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XA")

    def test_single(self):
        p = Pauli.single(5, 2, "Y")
        assert p.label() == "IIYII"
        assert p.weight() == 1

    def test_x_type(self):
        p = Pauli.x_type([1, 0, 1])
        assert p.label() == "XIX"
        assert p.is_x_type()
        assert not p.is_z_type()

    def test_z_type(self):
        p = Pauli.z_type([0, 1, 1])
        assert p.label() == "IZZ"
        assert p.is_z_type()

    def test_identity_is_both_types(self):
        p = Pauli.identity(3)
        assert p.is_x_type() and p.is_z_type()


class TestStructure:
    def test_weight_counts_y_once(self):
        assert Pauli.from_label("XYZ").weight() == 3
        assert Pauli.from_label("IYI").weight() == 1

    def test_support(self):
        assert Pauli.from_label("XIZY").support() == [0, 2, 3]

    def test_num_qubits(self):
        assert Pauli.identity(7).num_qubits == 7

    def test_restricted(self):
        p = Pauli.from_label("XIZY")
        assert p.restricted([0, 3]).label() == "XY"


class TestAlgebra:
    def test_product_xz_is_y(self):
        x = Pauli.from_label("X")
        z = Pauli.from_label("Z")
        assert (x * z).label() == "Y"

    def test_product_self_inverse(self):
        p = Pauli.from_label("XYZI")
        assert (p * p).is_identity()

    def test_product_mismatched_size(self):
        with pytest.raises(ValueError):
            Pauli.identity(2) * Pauli.identity(3)

    def test_single_qubit_anticommutation(self):
        x, y, z = (Pauli.from_label(s) for s in "XYZ")
        assert x.anticommutes_with(z)
        assert x.anticommutes_with(y)
        assert y.anticommutes_with(z)

    def test_commutes_with_identity(self):
        eye = Pauli.identity(1)
        for s in "XYZ":
            assert Pauli.from_label(s).commutes_with(eye)

    def test_two_qubit_commutation(self):
        # XX and ZZ commute (two anticommuting positions), XZ and ZX commute.
        assert Pauli.from_label("XX").commutes_with(Pauli.from_label("ZZ"))
        # XI and ZZ anticommute (one position).
        assert Pauli.from_label("XI").anticommutes_with(Pauli.from_label("ZZ"))

    def test_commutation_is_symmetric(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = Pauli(rng.integers(0, 2, 5), rng.integers(0, 2, 5))
            b = Pauli(rng.integers(0, 2, 5), rng.integers(0, 2, 5))
            assert a.commutes_with(b) == b.commutes_with(a)

    def test_stabilizer_syndrome_matches_inner_product(self):
        # For X-type error e and Z-type stabilizer s: anticommute iff
        # |supp(e) & supp(s)| is odd — the F2 inner product the paper uses.
        rng = np.random.default_rng(1)
        for _ in range(50):
            e = rng.integers(0, 2, 6, dtype=np.uint8)
            s = rng.integers(0, 2, 6, dtype=np.uint8)
            pe, ps = Pauli.x_type(e), Pauli.z_type(s)
            assert pe.anticommutes_with(ps) == bool((e @ s) % 2)


class TestProtocol:
    def test_equality(self):
        assert Pauli.from_label("XZ") == Pauli.from_label("XZ")
        assert Pauli.from_label("XZ") != Pauli.from_label("ZX")

    def test_equality_other_type(self):
        assert Pauli.from_label("X") != "X"

    def test_hash_consistent(self):
        a = Pauli.from_label("XYZ")
        b = Pauli.from_label("XYZ")
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_copy_independent(self):
        p = Pauli.from_label("XX")
        q = p.copy()
        q.x[0] = 0
        assert p.label() == "XX"

    def test_repr(self):
        assert "XZ" in repr(Pauli.from_label("XZ"))
