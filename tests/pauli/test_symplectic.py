"""Unit tests for the GF(2) linear-algebra substrate."""

import numpy as np
import pytest

from repro.pauli.symplectic import (
    as_bit_matrix,
    as_bit_vector,
    augment_to_basis,
    independent_rows,
    kernel,
    min_weight_in_coset,
    min_weight_vector_in_coset,
    random_full_rank,
    rank,
    row_space_contains,
    rref,
    solve,
    span_iter,
    span_matrix,
)


class TestAsBitMatrix:
    def test_from_lists(self):
        mat = as_bit_matrix([[1, 0], [0, 1]])
        assert mat.dtype == np.uint8
        assert mat.shape == (2, 2)

    def test_from_strings(self):
        mat = as_bit_matrix(["101", "010"])
        assert (mat == [[1, 0, 1], [0, 1, 0]]).all()

    def test_from_1d_array_reshapes(self):
        mat = as_bit_matrix(np.array([1, 0, 1], dtype=np.uint8))
        assert mat.shape == (1, 3)

    def test_empty_needs_column_count(self):
        with pytest.raises(ValueError):
            as_bit_matrix([])

    def test_empty_with_n(self):
        mat = as_bit_matrix([], 5)
        assert mat.shape == (0, 5)

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            as_bit_matrix(["101"], n=4)

    def test_values_reduced_mod_2(self):
        mat = as_bit_matrix(np.array([[2, 3]], dtype=np.int64))
        assert (mat == [[0, 1]]).all()

    def test_copy_not_view(self):
        src = np.array([[1, 0]], dtype=np.uint8)
        mat = as_bit_matrix(src)
        mat[0, 0] = 0
        assert src[0, 0] == 1


class TestAsBitVector:
    def test_from_string(self):
        assert (as_bit_vector("110") == [1, 1, 0]).all()

    def test_length_check(self):
        with pytest.raises(ValueError):
            as_bit_vector([1, 0], n=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_bit_vector(np.zeros((2, 2)))


class TestRref:
    def test_identity_fixed_point(self):
        eye = np.eye(4, dtype=np.uint8)
        reduced, pivots = rref(eye)
        assert (reduced == eye).all()
        assert pivots == [0, 1, 2, 3]

    def test_removes_dependent_rows(self):
        mat = as_bit_matrix(["110", "011", "101"])  # row3 = row1 + row2
        reduced, pivots = rref(mat)
        assert reduced.shape[0] == 2
        assert len(pivots) == 2

    def test_pivot_columns_are_unit(self):
        rng = np.random.default_rng(1)
        mat = rng.integers(0, 2, size=(4, 7), dtype=np.uint8)
        reduced, pivots = rref(mat)
        for row_index, piv in enumerate(pivots):
            column = reduced[:, piv]
            assert column[row_index] == 1
            assert column.sum() == 1

    def test_row_space_preserved(self):
        rng = np.random.default_rng(2)
        mat = rng.integers(0, 2, size=(3, 6), dtype=np.uint8)
        reduced, _ = rref(mat)
        for row in mat:
            assert row_space_contains(reduced, row)
        for row in reduced:
            assert row_space_contains(mat, row)

    def test_zero_matrix(self):
        reduced, pivots = rref(np.zeros((3, 4), dtype=np.uint8))
        assert reduced.shape == (0, 4)
        assert pivots == []


class TestRankKernel:
    def test_rank_identity(self):
        assert rank(np.eye(5, dtype=np.uint8)) == 5

    def test_rank_dependent(self):
        assert rank(as_bit_matrix(["11", "11"])) == 1

    def test_kernel_orthogonal(self):
        rng = np.random.default_rng(3)
        mat = rng.integers(0, 2, size=(3, 8), dtype=np.uint8)
        ker = kernel(mat)
        assert not (mat @ ker.T % 2).any()

    def test_kernel_dimension(self):
        rng = np.random.default_rng(4)
        mat = random_full_rank(rng, 3, 8)
        assert kernel(mat).shape[0] == 8 - 3

    def test_kernel_of_full_rank_square_is_trivial(self):
        assert kernel(np.eye(4, dtype=np.uint8)).shape[0] == 0

    def test_rank_nullity_random(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            mat = rng.integers(0, 2, size=(4, 9), dtype=np.uint8)
            assert rank(mat) + kernel(mat).shape[0] == 9


class TestSolve:
    def test_solves_combination(self):
        mat = as_bit_matrix(["1100", "0110", "0011"])
        vec = mat[0] ^ mat[2]
        coeffs = solve(mat, vec)
        assert coeffs is not None
        assert ((coeffs @ mat % 2) == vec).all()

    def test_unsolvable_returns_none(self):
        mat = as_bit_matrix(["1100"])
        assert solve(mat, as_bit_vector("0010")) is None

    def test_zero_vector_solvable(self):
        mat = as_bit_matrix(["101"])
        coeffs = solve(mat, [0, 0, 0])
        assert coeffs is not None
        assert ((coeffs @ mat % 2) == 0).all()

    def test_empty_matrix(self):
        assert solve(as_bit_matrix([], 3), [0, 0, 0]) is not None
        assert solve(as_bit_matrix([], 3), [1, 0, 0]) is None

    def test_row_space_contains_consistency(self):
        rng = np.random.default_rng(6)
        mat = rng.integers(0, 2, size=(3, 6), dtype=np.uint8)
        coeffs = rng.integers(0, 2, size=3, dtype=np.uint8)
        member = coeffs @ mat % 2
        assert row_space_contains(mat, member)


class TestSpan:
    def test_span_iter_count(self):
        mat = as_bit_matrix(["1000", "0100"])
        assert len(list(span_iter(mat))) == 4

    def test_span_iter_dedupes_dependent_basis(self):
        mat = as_bit_matrix(["11", "11"])
        vectors = [tuple(v) for v in span_iter(mat)]
        assert len(vectors) == len(set(vectors)) == 2

    def test_span_matrix_matches_iter(self):
        rng = np.random.default_rng(7)
        mat = rng.integers(0, 2, size=(3, 6), dtype=np.uint8)
        from_iter = {tuple(v) for v in span_iter(mat)}
        from_matrix = {tuple(v) for v in span_matrix(mat)}
        assert from_iter == from_matrix

    def test_span_matrix_contains_zero_and_rows(self):
        mat = as_bit_matrix(["110", "011"])
        rows = {tuple(v) for v in span_matrix(mat)}
        assert (0, 0, 0) in rows
        assert (1, 1, 0) in rows
        assert (0, 1, 1) in rows
        assert (1, 0, 1) in rows

    def test_span_rank_limit(self):
        with pytest.raises(ValueError):
            span_matrix(np.eye(25, dtype=np.uint8))


class TestCosetWeight:
    def test_zero_group(self):
        group = as_bit_matrix([], 4)
        assert min_weight_in_coset(group, [1, 1, 0, 0]) == 2

    def test_reduction_by_group_element(self):
        group = as_bit_matrix(["1100"])
        # 1100 itself reduces to zero weight.
        assert min_weight_in_coset(group, [1, 1, 0, 0]) == 0
        # 1000 ^ 1100 = 0100: weight stays 1.
        assert min_weight_in_coset(group, [1, 0, 0, 0]) == 1

    def test_representative_achieves_minimum(self):
        rng = np.random.default_rng(8)
        group = rng.integers(0, 2, size=(3, 8), dtype=np.uint8)
        vec = rng.integers(0, 2, size=8, dtype=np.uint8)
        rep = min_weight_vector_in_coset(group, vec)
        assert rep.sum() == min_weight_in_coset(group, vec)
        # Representative differs from vec by a group element.
        assert row_space_contains(group, rep ^ vec)


class TestIndependentRows:
    def test_keeps_originals(self):
        mat = as_bit_matrix(["110", "011", "101"])
        indep = independent_rows(mat)
        assert indep.shape[0] == 2
        for row in indep:
            assert any((row == orig).all() for orig in mat)

    def test_idempotent(self):
        rng = np.random.default_rng(9)
        mat = rng.integers(0, 2, size=(5, 7), dtype=np.uint8)
        once = independent_rows(mat)
        twice = independent_rows(once)
        assert (once == twice).all()


class TestAugmentToBasis:
    def test_augments_to_full_rank(self):
        space = np.eye(4, dtype=np.uint8)
        sub = as_bit_matrix(["1000"])
        added = augment_to_basis(sub, space)
        assert added.shape[0] == 3
        combined = np.concatenate([sub, added], axis=0)
        assert rank(combined) == 4

    def test_rejects_outside_subspace(self):
        space = as_bit_matrix(["1100", "0011"])
        sub = as_bit_matrix(["1000"])
        with pytest.raises(ValueError):
            augment_to_basis(sub, space)

    def test_empty_subspace(self):
        space = as_bit_matrix(["110", "011"])
        added = augment_to_basis(as_bit_matrix([], 3), space)
        assert rank(added) == 2


class TestRandomFullRank:
    def test_produces_full_rank(self):
        rng = np.random.default_rng(10)
        mat = random_full_rank(rng, 4, 6)
        assert rank(mat) == 4

    def test_rejects_impossible(self):
        rng = np.random.default_rng(11)
        with pytest.raises(ValueError):
            random_full_rank(rng, 5, 3)
