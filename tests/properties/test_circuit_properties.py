"""Property-based tests for circuits, frames, and the tableau simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.core.faults import PauliFrame, propagate
from repro.sim.tableau import Tableau, run_circuit


@st.composite
def clifford_circuit(draw, max_qubits=5, max_gates=20):
    n = draw(st.integers(2, max_qubits))
    circuit = Circuit(n)
    num_gates = draw(st.integers(0, max_gates))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["h", "cx"]))
        if kind == "h":
            circuit.h(draw(st.integers(0, n - 1)))
        else:
            control = draw(st.integers(0, n - 1))
            target = draw(st.integers(0, n - 2))
            if target >= control:
                target += 1
            circuit.cx(control, target)
    return circuit


@st.composite
def pauli_insertion(draw, n):
    qubit = draw(st.integers(0, n - 1))
    letter = draw(st.sampled_from(["X", "Y", "Z"]))
    return qubit, letter


class TestFrameVsTableau:
    @settings(max_examples=80, deadline=None)
    @given(clifford_circuit(), st.data())
    def test_frame_propagation_matches_tableau_conjugation(self, circuit, data):
        """Propagating a Pauli through a unitary circuit with the frame must
        match applying it on the tableau: final Z/X parities agree."""
        n = circuit.num_qubits
        qubit, letter = data.draw(pauli_insertion(n))

        # Frame: insert at the start, propagate through.
        frame = PauliFrame.zero(n)
        frame.insert(qubit, letter)
        propagate(circuit, frame)

        # Tableau A: plain circuit. Tableau B: Pauli first, then circuit.
        rng = np.random.default_rng(0)
        tab_a = Tableau(n, rng)
        run_circuit(circuit, tab_a)
        tab_b = Tableau(n, np.random.default_rng(0))
        if letter in ("X", "Y"):
            tab_b.pauli_x(qubit)
        if letter in ("Z", "Y"):
            tab_b.pauli_z(qubit)
        run_circuit(circuit, tab_b)

        # Compare deterministic Z-product expectations: for each qubit q,
        # if Z_q is deterministic in A it must be deterministic in B and
        # differ exactly by the frame's X parity on q.
        for q in range(n):
            support = np.zeros(n, dtype=np.uint8)
            support[q] = 1
            sign_a = tab_a.expectation_sign(support)
            sign_b = tab_b.expectation_sign(support)
            if sign_a is None:
                assert sign_b is None
            else:
                assert sign_b == sign_a ^ int(frame.x[q])

    @settings(max_examples=50, deadline=None)
    @given(clifford_circuit(max_qubits=4, max_gates=12))
    def test_unitary_circuit_preserves_frame_weight_parity(self, circuit):
        """H and CX map Paulis to Paulis — the frame never becomes trivial
        unless it started trivial (Clifford conjugation is invertible)."""
        n = circuit.num_qubits
        frame = PauliFrame.zero(n)
        frame.insert(0, "X")
        propagate(circuit, frame)
        assert frame.x.any() or frame.z.any()

    @settings(max_examples=40, deadline=None)
    @given(clifford_circuit(max_qubits=4, max_gates=10))
    def test_frame_linearity(self, circuit):
        """Propagation is linear: frame(P1*P2) = frame(P1) ^ frame(P2)."""
        n = circuit.num_qubits
        f1 = PauliFrame.zero(n)
        f1.insert(0, "X")
        propagate(circuit, f1)
        f2 = PauliFrame.zero(n)
        f2.insert(n - 1, "Z")
        propagate(circuit, f2)
        f12 = PauliFrame.zero(n)
        f12.insert(0, "X")
        f12.insert(n - 1, "Z")
        propagate(circuit, f12)
        assert (f12.x == (f1.x ^ f2.x)).all()
        assert (f12.z == (f1.z ^ f2.z)).all()


class TestTableauProperties:
    @settings(max_examples=50, deadline=None)
    @given(clifford_circuit(max_qubits=4, max_gates=15), st.integers(0, 100))
    def test_measurement_repeatable(self, circuit, seed):
        tab, _ = run_circuit(circuit, Tableau(circuit.num_qubits,
                                              np.random.default_rng(seed)))
        q = 0
        first = tab.measure_z(q)
        assert tab.measure_z(q) == first

    @settings(max_examples=50, deadline=None)
    @given(clifford_circuit(max_qubits=4, max_gates=15), st.integers(0, 100))
    def test_double_h_identity(self, circuit, seed):
        """Appending H H to any wire leaves all outcomes unchanged."""
        n = circuit.num_qubits
        extended = circuit.copy()
        extended.h(0)
        extended.h(0)
        tab_a, _ = run_circuit(circuit, Tableau(n, np.random.default_rng(seed)))
        tab_b, _ = run_circuit(extended, Tableau(n, np.random.default_rng(seed)))
        for q in range(n):
            support = np.zeros(n, dtype=np.uint8)
            support[q] = 1
            assert tab_a.expectation_sign(support) == tab_b.expectation_sign(
                support
            )

    @settings(max_examples=30, deadline=None)
    @given(clifford_circuit(max_qubits=4, max_gates=12), st.integers(0, 50))
    def test_cx_self_inverse(self, circuit, seed):
        n = circuit.num_qubits
        extended = circuit.copy()
        extended.cx(0, 1)
        extended.cx(0, 1)
        tab_a, _ = run_circuit(circuit, Tableau(n, np.random.default_rng(seed)))
        tab_b, _ = run_circuit(extended, Tableau(n, np.random.default_rng(seed)))
        for q in range(n):
            support = np.zeros(n, dtype=np.uint8)
            support[q] = 1
            assert tab_a.expectation_sign(support) == tab_b.expectation_sign(
                support
            )
