"""Property-based cross-validation of the two decoders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.decoder import LookupDecoder
from repro.sim.matching import MatchingDecoder, is_matchable


@st.composite
def matchable_checks(draw, max_checks=4, max_qubits=8):
    """Random matchable check matrix: every column weight 1 or 2."""
    m = draw(st.integers(2, max_checks))
    n = draw(st.integers(2, max_qubits))
    columns = []
    for _ in range(n):
        weight = draw(st.integers(1, 2))
        rows = draw(
            st.lists(
                st.integers(0, m - 1),
                min_size=weight,
                max_size=weight,
                unique=True,
            )
        )
        column = np.zeros(m, dtype=np.uint8)
        column[rows] = 1
        columns.append(column)
    checks = np.array(columns, dtype=np.uint8).T
    # Every check must see at least one qubit (no empty rows).
    if (checks.sum(axis=1) == 0).any():
        return None
    return checks


class TestMatchingVsLookup:
    @settings(max_examples=60, deadline=None)
    @given(matchable_checks(), st.integers(0, 2**31 - 1))
    def test_same_minimum_weight(self, checks, seed):
        """Both decoders return corrections of identical weight for every
        decodable syndrome reached by a random error."""
        if checks is None:
            return
        assert is_matchable(checks)
        lookup = LookupDecoder(checks)
        matching = MatchingDecoder(checks)
        rng = np.random.default_rng(seed)
        error = rng.integers(0, 2, size=checks.shape[1], dtype=np.uint8)
        syndrome = lookup.syndrome(error)
        a = lookup.decode(syndrome)
        b = matching.decode(syndrome)
        assert (lookup.syndrome(a) == syndrome).all()
        assert (matching.syndrome(b) == syndrome).all()
        assert int(a.sum()) == int(b.sum())

    @settings(max_examples=40, deadline=None)
    @given(matchable_checks(), st.integers(0, 2**31 - 1))
    def test_correct_silences_syndrome(self, checks, seed):
        if checks is None:
            return
        matching = MatchingDecoder(checks)
        rng = np.random.default_rng(seed)
        error = rng.integers(0, 2, size=checks.shape[1], dtype=np.uint8)
        residual = matching.correct(error)
        assert not matching.syndrome(residual).any()
