"""Property-based tests (hypothesis) for the F2 / Pauli substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli.group import CosetReducer
from repro.pauli.pauli import Pauli
from repro.pauli.symplectic import (
    kernel,
    rank,
    rref,
    row_space_contains,
    solve,
    span_matrix,
)


@st.composite
def bit_matrix(draw, max_rows=5, max_cols=8):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    data = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.array(data, dtype=np.uint8)


@st.composite
def matrix_and_vector(draw, max_rows=5, max_cols=8):
    mat = draw(bit_matrix(max_rows, max_cols))
    vec = draw(
        st.lists(
            st.integers(0, 1), min_size=mat.shape[1], max_size=mat.shape[1]
        )
    )
    return mat, np.array(vec, dtype=np.uint8)


@st.composite
def pauli_pair(draw, max_n=8):
    n = draw(st.integers(1, max_n))
    bits = st.lists(st.integers(0, 1), min_size=n, max_size=n)
    return (
        Pauli(np.array(draw(bits)), np.array(draw(bits))),
        Pauli(np.array(draw(bits)), np.array(draw(bits))),
    )


class TestLinearAlgebraProperties:
    @given(bit_matrix())
    def test_rref_idempotent(self, mat):
        once, _ = rref(mat)
        twice, _ = rref(once)
        assert once.shape == twice.shape
        assert (once == twice).all()

    @given(bit_matrix())
    def test_rank_nullity(self, mat):
        assert rank(mat) + kernel(mat).shape[0] == mat.shape[1]

    @given(bit_matrix())
    def test_kernel_orthogonal(self, mat):
        ker = kernel(mat)
        if ker.shape[0]:
            assert not (mat @ ker.T % 2).any()

    @given(bit_matrix(max_rows=4, max_cols=6))
    def test_span_matrix_size(self, mat):
        assert span_matrix(mat).shape[0] == 1 << rank(mat)

    @given(matrix_and_vector())
    def test_solve_soundness(self, mv):
        mat, vec = mv
        coeffs = solve(mat, vec)
        if coeffs is not None:
            assert ((coeffs @ mat % 2).astype(np.uint8) == vec).all()
        else:
            assert not row_space_contains(mat, vec)

    @given(matrix_and_vector())
    def test_membership_solve_consistency(self, mv):
        mat, vec = mv
        assert row_space_contains(mat, vec) == (solve(mat, vec) is not None)


class TestCosetProperties:
    @given(matrix_and_vector(max_rows=4, max_cols=7))
    def test_coset_weight_bounded_by_weight(self, mv):
        mat, vec = mv
        reducer = CosetReducer(mat)
        assert reducer.coset_weight(vec) <= int(vec.sum())

    @given(matrix_and_vector(max_rows=4, max_cols=7))
    def test_reduce_achieves_weight(self, mv):
        mat, vec = mv
        reducer = CosetReducer(mat)
        rep = reducer.reduce(vec)
        assert int(rep.sum()) == reducer.coset_weight(vec)

    @given(matrix_and_vector(max_rows=4, max_cols=7))
    def test_coset_weight_invariant_under_group(self, mv):
        mat, vec = mv
        reducer = CosetReducer(mat)
        base = reducer.coset_weight(vec)
        for g in span_matrix(mat)[:8]:
            assert reducer.coset_weight(vec ^ g) == base

    @given(matrix_and_vector(max_rows=4, max_cols=7))
    def test_triangle_inequality_style_bound(self, mv):
        """wt_S(a + b) <= wt_S(a) + wt(b) for any shift b."""
        mat, vec = mv
        reducer = CosetReducer(mat)
        shift = np.zeros_like(vec)
        if len(shift):
            shift[0] = 1
        assert (
            reducer.coset_weight(vec ^ shift)
            <= reducer.coset_weight(vec) + int(shift.sum())
        )


class TestPauliProperties:
    @given(pauli_pair())
    def test_commutation_symmetric(self, pair):
        a, b = pair
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(pauli_pair())
    def test_product_weight_subadditive(self, pair):
        a, b = pair
        assert (a * b).weight() <= a.weight() + b.weight()

    @given(pauli_pair())
    def test_product_self_inverse(self, pair):
        a, b = pair
        assert ((a * b) * b) == a

    @given(pauli_pair())
    def test_label_roundtrip(self, pair):
        a, _ = pair
        assert Pauli.from_label(a.label()) == a

    @given(pauli_pair())
    def test_product_commutes_iff_even_overlap(self, pair):
        a, b = pair
        form = int((a.x & b.z).sum() + (a.z & b.x).sum()) % 2
        assert a.commutes_with(b) == (form == 0)
