"""Property-based tests for the SAT solver and encodings."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cardinality import Totalizer
from repro.sat.cnf import CNF
from repro.sat.encode import add_xor_constraint, at_most_k_seq
from repro.sat.solver import Solver


@st.composite
def random_cnf(draw, max_vars=8, max_clauses=25):
    num_vars = draw(st.integers(2, max_vars))
    num_clauses = draw(st.integers(1, max_clauses))
    cnf = CNF()
    cnf.new_vars(num_vars)
    for _ in range(num_clauses):
        width = draw(st.integers(1, min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clause = [
            v if draw(st.booleans()) else -v for v in variables
        ]
        cnf.add_clause(clause)
    return cnf


def brute_force(cnf: CNF):
    for assignment in itertools.product((False, True), repeat=cnf.num_vars):
        values = (None,) + assignment
        if all(
            any(values[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return False


class TestSolverProperties:
    @settings(max_examples=120, deadline=None)
    @given(random_cnf())
    def test_agrees_with_brute_force(self, cnf):
        result = Solver(cnf).solve()
        assert result.sat == brute_force(cnf)

    @settings(max_examples=60, deadline=None)
    @given(random_cnf())
    def test_model_satisfies_formula(self, cnf):
        result = Solver(cnf).solve()
        if result.sat:
            assert all(
                any(result.model[abs(l)] == (l > 0) for l in clause)
                for clause in cnf.clauses
            )

    @settings(max_examples=40, deadline=None)
    @given(random_cnf(max_vars=6))
    def test_assumptions_consistent_with_units(self, cnf):
        """solve(assumptions=[l]) must equal solving with unit clause l."""
        base = Solver(cnf)
        for lit in (1, -1, 2, -2):
            with_assumption = base.solve(assumptions=[lit]).sat
            unit_cnf = CNF.from_dimacs(cnf.to_dimacs())
            unit_cnf.add_unit(lit)
            assert with_assumption == Solver(unit_cnf).solve().sat


class TestEncodingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 6),
        st.integers(0, 6),
        st.randoms(use_true_random=False),
    )
    def test_totalizer_equals_sequential_counter(self, n, k, rnd):
        """Both cardinality encodings accept exactly the same input sets."""
        for trial in range(4):
            forced = [rnd.random() < 0.5 for _ in range(n)]
            cnf_a = CNF()
            vs_a = cnf_a.new_vars(n)
            Totalizer(cnf_a, vs_a).assert_at_most(min(k, n))
            cnf_b = CNF()
            vs_b = cnf_b.new_vars(n)
            at_most_k_seq(cnf_b, vs_b, min(k, n))
            for cnf, vs in ((cnf_a, vs_a), (cnf_b, vs_b)):
                for v, val in zip(vs, forced):
                    cnf.add_unit(v if val else -v)
            assert Solver(cnf_a).solve().sat == Solver(cnf_b).solve().sat

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=7), st.integers(0, 1))
    def test_xor_constraint_forced_inputs(self, bits, parity):
        cnf = CNF()
        vs = cnf.new_vars(len(bits))
        add_xor_constraint(cnf, vs, parity)
        for v, bit in zip(vs, bits):
            cnf.add_unit(v if bit else -v)
        expected = (sum(bits) % 2) == parity
        assert Solver(cnf).solve().sat == expected


class TestGF2SystemsViaSat:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_linear_system_solutions_count(self, seed):
        """# models of an XOR system == 2^(n - rank) — ties the SAT stack
        to the symplectic substrate."""
        from repro.pauli.symplectic import rank as f2_rank

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 4))
        mat = rng.integers(0, 2, size=(m, n), dtype=np.uint8)
        cnf = CNF()
        vs = cnf.new_vars(n)
        for row in mat:
            lits = [vs[j] for j in range(n) if row[j]]
            add_xor_constraint(cnf, lits, 0)
        # Count models by blocking.
        count = 0
        while True:
            result = Solver(cnf).solve()
            if not result.sat:
                break
            count += 1
            cnf.add_clause([(-v if result.model[v] else v) for v in vs])
            if count > 64:
                break
        assert count == 1 << (n - f2_rank(mat))
