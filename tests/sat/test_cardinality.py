"""Unit tests for the totalizer encoding (incremental weight bounds)."""

import itertools

import pytest

from repro.sat.cardinality import Totalizer
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def count_true(model, vs):
    return sum(1 for v in vs if model[v])


class TestTotalizer:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 0), (5, 5), (6, 3)])
    def test_at_most_assumption_enforces_bound(self, n, k):
        cnf = CNF()
        vs = cnf.new_vars(n)
        totalizer = Totalizer(cnf, vs)
        solver = Solver(cnf)
        result = solver.solve(assumptions=totalizer.at_most(k))
        assert result.sat
        assert count_true(result.model, vs) <= k

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_every_count_reachable_under_exact_bound(self, n):
        # For each k, assumptions at_most(k) but not at_most(k-1) must admit
        # a model with exactly k true inputs.
        for k in range(n + 1):
            cnf = CNF()
            vs = cnf.new_vars(n)
            totalizer = Totalizer(cnf, vs)
            # Force exactly k of the inputs true with unit clauses.
            for i, v in enumerate(vs):
                cnf.add_unit(v if i < k else -v)
            solver = Solver(cnf)
            assert solver.solve(assumptions=totalizer.at_most(k)).sat
            if k > 0:
                assert not solver.solve(
                    assumptions=totalizer.at_most(k - 1)
                ).sat

    def test_at_most_full_is_free(self):
        cnf = CNF()
        vs = cnf.new_vars(4)
        totalizer = Totalizer(cnf, vs)
        assert totalizer.at_most(4) == []
        assert totalizer.at_most(7) == []

    def test_negative_bound_rejected(self):
        cnf = CNF()
        totalizer = Totalizer(cnf, cnf.new_vars(3))
        with pytest.raises(ValueError):
            totalizer.at_most(-1)

    def test_limit_cap(self):
        cnf = CNF()
        vs = cnf.new_vars(6)
        totalizer = Totalizer(cnf, vs, bound=2)
        solver = Solver(cnf)
        assert solver.solve(assumptions=totalizer.at_most(1)).sat
        with pytest.raises(ValueError):
            totalizer.at_most(3)

    def test_assert_at_most_permanent(self):
        cnf = CNF()
        vs = cnf.new_vars(4)
        totalizer = Totalizer(cnf, vs)
        totalizer.assert_at_most(1)
        for v in vs[:2]:
            cnf.add_unit(v)
        assert not Solver(cnf).solve().sat

    def test_models_exactly_match_brute_force(self):
        n, k = 4, 2
        cnf = CNF()
        vs = cnf.new_vars(n)
        totalizer = Totalizer(cnf, vs)
        totalizer.assert_at_most(k)
        seen = set()
        while True:
            result = Solver(cnf).solve()
            if not result.sat:
                break
            assignment = tuple(result.model[v] for v in vs)
            seen.add(assignment)
            cnf.add_clause([(-v if result.model[v] else v) for v in vs])
        expected = {
            p
            for p in itertools.product((False, True), repeat=n)
            if sum(p) <= k
        }
        assert seen == expected

    def test_single_input(self):
        cnf = CNF()
        (v,) = cnf.new_vars(1)
        totalizer = Totalizer(cnf, [v])
        solver = Solver(cnf)
        result = solver.solve(assumptions=totalizer.at_most(0))
        assert result.sat
        assert not result.model[v]
