"""Unit tests for the CNF container and literal conventions."""

import pytest

from repro.sat.cnf import CNF, internal_to_lit, lit_to_internal


class TestLiteralConversion:
    def test_roundtrip(self):
        for lit in (1, -1, 5, -5, 123, -123):
            assert internal_to_lit(lit_to_internal(lit)) == lit

    def test_positive_literal_even(self):
        assert lit_to_internal(3) == 6

    def test_negative_literal_odd(self):
        assert lit_to_internal(-3) == 7

    def test_negation_is_xor_one(self):
        assert lit_to_internal(-4) == lit_to_internal(4) ^ 1


class TestCNF:
    def test_new_var_sequential(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_named_variables(self):
        cnf = CNF()
        v = cnf.new_var("x")
        assert cnf.var("x") == v
        assert cnf.name_of(v) == "x"

    def test_duplicate_name_rejected(self):
        cnf = CNF()
        cnf.new_var("x")
        with pytest.raises(ValueError):
            cnf.new_var("x")

    def test_new_vars_prefix(self):
        cnf = CNF()
        vs = cnf.new_vars(3, prefix="a")
        assert cnf.var("a[1]") == vs[1]

    def test_add_clause_validates_literals(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([2])  # unknown variable
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_empty_clause_kept(self):
        cnf = CNF()
        cnf.add_clause([])
        assert [] in cnf.clauses

    def test_add_unit(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(-v)
        assert [-v] in cnf.clauses

    def test_dimacs_roundtrip(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        cnf.add_clause([-a])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_dimacs_header(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        assert cnf.to_dimacs().startswith("p cnf 1 1")

    def test_from_dimacs_ignores_comments(self):
        parsed = CNF.from_dimacs("c comment\np cnf 2 1\n1 -2 0\n")
        assert parsed.clauses == [[1, -2]]
