"""Unit tests for Tseitin gate encodings, validated by model enumeration."""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.encode import (
    add_xor_constraint,
    at_least_one,
    at_most_k_seq,
    at_most_one,
    encode_and,
    encode_or,
    encode_xor_chain,
    encode_xor_gate,
    exactly_one,
    implies_clause,
)
from repro.sat.solver import Solver


def all_models(cnf: CNF, project: list[int]):
    """Every satisfying assignment restricted to ``project`` variables."""
    models = set()
    solver_cnf = cnf  # enumerate by blocking clauses
    while True:
        solver = Solver(solver_cnf)
        result = solver.solve()
        if not result.sat:
            return models
        assignment = tuple(result.model[v] for v in project)
        models.add(assignment)
        solver_cnf.add_clause(
            [(-v if result.model[v] else v) for v in project]
        )


def check_gate(encoder, arity: int, truth_fn):
    """Assert the encoded gate matches ``truth_fn`` on every input pattern."""
    for pattern in itertools.product((False, True), repeat=arity):
        cnf = CNF()
        inputs = cnf.new_vars(arity)
        gate = encoder(cnf, inputs)
        for v, val in zip(inputs, pattern):
            cnf.add_unit(v if val else -v)
        result = Solver(cnf).solve()
        assert result.sat, "fixing gate inputs must stay satisfiable"
        expected = truth_fn(pattern)
        got = result.model[abs(gate)] == (gate > 0)
        assert got == expected, f"inputs {pattern}: want {expected}, got {got}"


class TestAndOr:
    @pytest.mark.parametrize("arity", [1, 2, 3, 5])
    def test_and(self, arity):
        check_gate(encode_and, arity, all)

    @pytest.mark.parametrize("arity", [1, 2, 3, 5])
    def test_or(self, arity):
        check_gate(encode_or, arity, any)

    def test_and_empty_is_true(self):
        cnf = CNF()
        gate = encode_and(cnf, [])
        result = Solver(cnf).solve()
        assert result.sat and result.model[abs(gate)] == (gate > 0)

    def test_or_empty_is_false(self):
        cnf = CNF()
        gate = encode_or(cnf, [])
        result = Solver(cnf).solve()
        assert result.sat
        assert (result.model[abs(gate)] == (gate > 0)) is False

    def test_negated_inputs(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        gate = encode_and(cnf, [a, -b])
        cnf.add_unit(a)
        cnf.add_unit(-b)
        result = Solver(cnf).solve()
        assert result.model[gate]


class TestXor:
    def test_xor_gate(self):
        check_gate(
            lambda cnf, ins: encode_xor_gate(cnf, ins[0], ins[1]),
            2,
            lambda p: p[0] ^ p[1],
        )

    @pytest.mark.parametrize("arity", [1, 2, 3, 4, 6])
    @pytest.mark.parametrize("parity", [0, 1])
    def test_xor_chain(self, arity, parity):
        check_gate(
            lambda cnf, ins: encode_xor_chain(cnf, ins, parity=parity),
            arity,
            lambda p: bool(sum(p) % 2) ^ bool(parity),
        )

    def test_xor_chain_empty(self):
        cnf = CNF()
        lit0 = encode_xor_chain(cnf, [], parity=0)
        lit1 = encode_xor_chain(cnf, [], parity=1)
        result = Solver(cnf).solve()
        assert (result.model[abs(lit0)] == (lit0 > 0)) is False
        assert (result.model[abs(lit1)] == (lit1 > 0)) is True

    @pytest.mark.parametrize("arity", [1, 2, 3, 5])
    @pytest.mark.parametrize("parity", [0, 1])
    def test_xor_constraint_models(self, arity, parity):
        cnf = CNF()
        inputs = cnf.new_vars(arity)
        add_xor_constraint(cnf, inputs, parity)
        models = all_models(cnf, inputs)
        expected = {
            p
            for p in itertools.product((False, True), repeat=arity)
            if sum(p) % 2 == parity
        }
        assert models == expected

    def test_xor_constraint_empty_odd_unsat(self):
        cnf = CNF()
        add_xor_constraint(cnf, [], 1)
        assert not Solver(cnf).solve().sat

    def test_xor_constraint_empty_even_sat(self):
        cnf = CNF()
        add_xor_constraint(cnf, [], 0)
        assert Solver(cnf).solve().sat


class TestCardinality:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (5, 3), (4, 4)])
    def test_at_most_k_seq_models(self, n, k):
        cnf = CNF()
        inputs = cnf.new_vars(n)
        at_most_k_seq(cnf, inputs, k)
        models = all_models(cnf, inputs)
        expected = {
            p
            for p in itertools.product((False, True), repeat=n)
            if sum(p) <= k
        }
        assert models == expected

    def test_at_most_k_negative_unsat(self):
        cnf = CNF()
        cnf.new_vars(2)
        at_most_k_seq(cnf, [1, 2], -1)
        assert not Solver(cnf).solve().sat

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_at_most_one_models(self, n):
        cnf = CNF()
        inputs = cnf.new_vars(n)
        at_most_one(cnf, inputs)
        models = all_models(cnf, inputs)
        assert models == {
            p
            for p in itertools.product((False, True), repeat=n)
            if sum(p) <= 1
        }

    def test_at_most_one_guarded(self):
        # With the guard false the constraint must not bite.
        cnf = CNF()
        guard = cnf.new_var()
        inputs = cnf.new_vars(3)
        at_most_one(cnf, inputs, condition=guard)
        cnf.add_unit(-guard)
        for v in inputs:
            cnf.add_unit(v)
        assert Solver(cnf).solve().sat

    def test_at_most_one_guard_active(self):
        cnf = CNF()
        guard = cnf.new_var()
        inputs = cnf.new_vars(3)
        at_most_one(cnf, inputs, condition=guard)
        cnf.add_unit(guard)
        for v in inputs[:2]:
            cnf.add_unit(v)
        assert not Solver(cnf).solve().sat

    def test_exactly_one(self):
        cnf = CNF()
        inputs = cnf.new_vars(3)
        exactly_one(cnf, inputs)
        models = all_models(cnf, inputs)
        assert models == {
            p
            for p in itertools.product((False, True), repeat=3)
            if sum(p) == 1
        }

    def test_at_least_one(self):
        cnf = CNF()
        inputs = cnf.new_vars(2)
        at_least_one(cnf, inputs)
        assert all_models(cnf, inputs) == {
            (False, True), (True, False), (True, True)
        }


class TestImplies:
    def test_implies_clause(self):
        cnf = CNF()
        g, a, b = cnf.new_vars(3)
        implies_clause(cnf, g, [a, b])
        cnf.add_unit(g)
        cnf.add_unit(-a)
        result = Solver(cnf).solve()
        assert result.sat and result.model[b]

    def test_implies_vacuous_when_guard_false(self):
        cnf = CNF()
        g, a = cnf.new_vars(2)
        implies_clause(cnf, g, [a])
        cnf.add_unit(-g)
        cnf.add_unit(-a)
        assert Solver(cnf).solve().sat
