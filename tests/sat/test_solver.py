"""Correctness tests for the CDCL solver (the Z3 substitute).

The decisive test is the random cross-check: thousands of small random
CNFs whose satisfiability is decided independently by brute force.
"""

import itertools

import numpy as np
import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, solve_cnf


def brute_force_sat(cnf: CNF) -> bool:
    for assignment in itertools.product((False, True), repeat=cnf.num_vars):
        values = (None,) + assignment
        if all(
            any(
                values[abs(lit)] == (lit > 0)
                for lit in clause
            )
            for clause in cnf.clauses
        ):
            return True
    return False


def model_satisfies(cnf: CNF, model) -> bool:
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause)
        for clause in cnf.clauses
    )


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver(CNF()).solve().sat

    def test_single_unit(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        result = Solver(cnf).solve()
        assert result.sat
        assert result.value(v) is True

    def test_contradictory_units(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        cnf.add_unit(-v)
        assert not Solver(cnf).solve().sat

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([])
        assert not Solver(cnf).solve().sat

    def test_implication_chain(self):
        cnf = CNF()
        vs = cnf.new_vars(20)
        cnf.add_unit(vs[0])
        for a, b in zip(vs, vs[1:]):
            cnf.add_clause([-a, b])
        result = Solver(cnf).solve()
        assert result.sat
        assert all(result.value(v) for v in vs)

    def test_model_unavailable_on_unsat(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        cnf.add_unit(-v)
        result = Solver(cnf).solve()
        with pytest.raises(ValueError):
            result.value(v)

    def test_bool_protocol(self):
        cnf = CNF()
        cnf.new_var()
        assert bool(Solver(cnf).solve())


class TestPigeonhole:
    """PHP(n+1, n) is UNSAT and exercises the conflict-analysis machinery."""

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        pigeons = holes + 1
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause([var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var[p1][h], -var[p2][h]])
        assert not Solver(cnf).solve().sat

    def test_exact_fit_sat(self):
        holes = pigeons = 4
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause([var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var[p1][h], -var[p2][h]])
        result = Solver(cnf).solve()
        assert result.sat
        assert model_satisfies(cnf, result.model)


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(40):
            num_vars = int(rng.integers(3, 10))
            num_clauses = int(rng.integers(1, int(5 * num_vars)))
            cnf = CNF()
            cnf.new_vars(num_vars)
            for _ in range(num_clauses):
                width = int(rng.integers(1, 4))
                clause_vars = rng.choice(num_vars, size=width, replace=False)
                clause = [
                    int(v + 1) * (1 if rng.integers(0, 2) else -1)
                    for v in clause_vars
                ]
                cnf.add_clause(clause)
            expected = brute_force_sat(cnf)
            result = Solver(cnf).solve()
            assert result.sat == expected
            if result.sat:
                assert model_satisfies(cnf, result.model)

    def test_random_xor_systems(self):
        # XOR chains stress propagation-heavy instances.
        from repro.sat.encode import add_xor_constraint

        rng = np.random.default_rng(99)
        for _ in range(20):
            n = int(rng.integers(3, 8))
            mat = rng.integers(0, 2, size=(n - 1, n), dtype=np.uint8)
            rhs = rng.integers(0, 2, size=n - 1, dtype=np.uint8)
            cnf = CNF()
            vs = cnf.new_vars(n)
            for row, b in zip(mat, rhs):
                lits = [vs[j] for j in range(n) if row[j]]
                add_xor_constraint(cnf, lits, int(b))
            result = Solver(cnf).solve()
            # Solvable iff rhs is in the column space — cross-check by brute force.
            assert result.sat == brute_force_sat(cnf)


class TestAssumptions:
    def build(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        return cnf, (a, b, c)

    def test_assumption_forces_value(self):
        cnf, (a, b, c) = self.build()
        solver = Solver(cnf)
        result = solver.solve(assumptions=[a])
        assert result.sat
        assert result.value(a) and result.value(c)

    def test_conflicting_assumptions_unsat(self):
        cnf, (a, b, c) = self.build()
        solver = Solver(cnf)
        assert not solver.solve(assumptions=[a, -c]).sat

    def test_solver_reusable_after_assumption_unsat(self):
        cnf, (a, b, c) = self.build()
        solver = Solver(cnf)
        assert not solver.solve(assumptions=[a, -c]).sat
        assert solver.solve().sat
        assert solver.solve(assumptions=[-a]).sat

    def test_incremental_bound_tightening(self):
        # The optimality-loop usage pattern: one solver, shrinking bounds.
        from repro.sat.cardinality import Totalizer

        cnf = CNF()
        vs = cnf.new_vars(6)
        cnf.add_clause(vs)  # at least one true
        cnf.add_clause([vs[0], vs[1]])
        totalizer = Totalizer(cnf, vs)
        solver = Solver(cnf)
        for k in range(5, -1, -1):
            result = solver.solve(assumptions=totalizer.at_most(k))
            if k >= 1:
                assert result.sat
                assert sum(result.model[v] for v in vs) <= k
            else:
                assert not result.sat

    def test_statistics_accumulate(self):
        cnf, _ = self.build()
        solver = Solver(cnf)
        solver.solve()
        assert solver.propagations >= 0
        result = solver.solve()
        assert result.sat


class TestSolveCnfHelper:
    def test_one_shot(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        assert solve_cnf(cnf).sat
