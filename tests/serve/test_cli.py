"""CLI wiring for the daemon era: serve/query/ledger commands and the
``--ledger`` / ``--no-ledger`` flags (and their ``REPRO_LEDGER`` fold)."""

import json
import os
from pathlib import Path

import pytest

from repro.cli import _apply_ledger_flags, build_parser, main
from repro.serve.ledger import ENV_VAR, ResultsLedger


class TestParser:
    def test_ledger_flags_on_simulation_subcommands(self):
        for command in (["simulate", "steane"], ["figure4"]):
            args = build_parser().parse_args(command)
            assert args.ledger is None and args.no_ledger is False
            args = build_parser().parse_args(command + ["--no-ledger"])
            assert args.no_ledger is True
            args = build_parser().parse_args(
                command + ["--ledger", "/tmp/led"]
            )
            assert args.ledger == Path("/tmp/led")
        with pytest.raises(SystemExit):  # mutually exclusive
            build_parser().parse_args(
                ["figure4", "--ledger", "/x", "--no-ledger"]
            )

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--listen", "127.0.0.1:0"]
        )
        assert args.listen == "127.0.0.1:0"
        assert args.engine_slots == 8
        assert args.compute_threads == 4
        assert args.workers == 1 and args.cluster is None

    def test_query_subcommands(self):
        args = build_parser().parse_args(
            [
                "query", "--connect", ":7790", "sweep", "steane",
                "--shots", "2000", "--p", "0.001", "0.01",
                "--direct-at", "0.01",
            ]
        )
        assert args.query_command == "sweep"
        assert args.shots == 2000 and args.p == [0.001, 0.01]
        assert args.direct_at == 0.01
        args = build_parser().parse_args(
            ["query", "--connect", "h:1", "direct", "steane", "0.001"]
        )
        assert args.p == 0.001
        for op in ("ping", "stats", "shutdown"):
            args = build_parser().parse_args(["query", "--connect", "h:1", op])
            assert args.query_command == op

    def test_ledger_maintenance_subcommands(self):
        args = build_parser().parse_args(["ledger", "ls"])
        assert args.ledger_command == "ls"
        args = build_parser().parse_args(["ledger", "show", "series", "abc"])
        assert (args.kind, args.key) == ("series", "abc")
        args = build_parser().parse_args(["ledger", "gc", "--max-bytes", "1M"])
        assert args.max_bytes == "1M"


class TestLedgerFlagFold:
    def test_no_ledger_folds_to_off(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        args = build_parser().parse_args(["figure4", "--no-ledger"])
        _apply_ledger_flags(args)
        assert os.environ[ENV_VAR] == "off"

    def test_ledger_path_folds_to_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_VAR, raising=False)
        args = build_parser().parse_args(
            ["figure4", "--ledger", str(tmp_path / "led")]
        )
        _apply_ledger_flags(args)
        assert os.environ[ENV_VAR] == str(tmp_path / "led")

    def test_unflagged_leaves_environment_alone(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "keep-me")
        args = build_parser().parse_args(["figure4"])
        _apply_ledger_flags(args)
        assert os.environ[ENV_VAR] == "keep-me"


class TestLedgerCommand:
    @pytest.fixture(autouse=True)
    def _isolate_env(self, monkeypatch):
        # main() folds --ledger into REPRO_LEDGER; monkeypatch records
        # and restores the pre-test value around that mutation.
        monkeypatch.setenv(ENV_VAR, "off")

    @pytest.fixture
    def seeded_root(self, tmp_path):
        ledger = ResultsLedger(tmp_path / "ledger")
        ledger.put("series", "deadbeef", {"trials": 10, "failures": 1})
        return ledger.root

    def test_ls(self, seeded_root, capsys):
        assert main(["ledger", "--ledger", str(seeded_root), "ls"]) == 0
        out = capsys.readouterr().out
        assert "series" in out and "deadbeef" in out and "1 records" in out

    def test_show(self, seeded_root, capsys):
        code = main(
            ["ledger", "--ledger", str(seeded_root), "show", "series", "deadbeef"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out) == {
            "trials": 10,
            "failures": 1,
        }

    def test_show_missing_key(self, seeded_root, capsys):
        code = main(
            ["ledger", "--ledger", str(seeded_root), "show", "series", "nope"]
        )
        assert code == 1

    def test_verify_clean_and_corrupt(self, seeded_root, capsys):
        assert main(["ledger", "--ledger", str(seeded_root), "verify"]) == 0
        segment = seeded_root / "segments" / "series.jsonl"
        segment.write_bytes(segment.read_bytes() + b"garbage\n")
        assert main(["ledger", "--ledger", str(seeded_root), "verify"]) == 1
        out = capsys.readouterr().out
        assert "1 bad lines quarantined" in out

    def test_gc(self, seeded_root, capsys):
        assert main(["ledger", "--ledger", str(seeded_root), "gc", "--max-bytes", "1"]) == 0
        assert "evicted 1 records" in capsys.readouterr().out

    def test_disabled_ledger_is_loud(self, monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, "off")
        assert main(["ledger", "ls"]) == 2
        assert "disabled" in capsys.readouterr().err


class TestServeCommand:
    def test_bad_listen_is_loud(self, capsys):
        assert main(["serve", "--listen", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_noise_flag_rejected(self, capsys):
        assert (
            main(["serve", "--listen", "127.0.0.1:0", "--noise", "biased:eta=10,p=1e-3"])
            == 2
        )
        assert "per query" in capsys.readouterr().err
