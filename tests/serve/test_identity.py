"""Bit-identity gates: the daemon is an optimization, never a fork.

Every answer the daemon gives must be byte-for-byte the answer the cold
code paths give — for all four compute ops, and regardless of backend:

* ``sweep`` — daemon response == cold ``run_series`` (the figure4/CLI
  core) == ledger replay, down to every float;
* daemon and CLI *share* ledger entries: a record the daemon computed
  satisfies ``run_series`` without building an engine, and vice versa;
* ``ftcheck`` / ``budget`` / ``direct`` — daemon records equal the
  library calls they wrap;
* ``--cluster`` backend — a daemon dispatching chunks to TCP workers,
  one of which is killed mid-run, still returns the identical payload;
* the ``repro query`` CLI client round-trips the daemon's floats
  exactly (JSON float serialization is repr-based).
"""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

import repro.sim.sampler as sampler_mod
from repro.experiments.figure4 import run_series
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.sim.cluster import ClusterExecutorFactory, ClusterWorker
from repro.sim.noise import E1_1
from repro.sim.sampler import make_sampler
from repro.sim.subset import direct_mc
from repro.store import keys as store_keys

from ..conftest import cached_protocol

SHOTS, K_MAX, SEED = 1200, 2, 11
GRID = [1e-4, 1e-3, 1e-2, 1e-1]


def _prewarm(server):
    protocol = cached_protocol("steane")
    server._protocols[("steane", "heuristic", "optimal")] = (
        protocol,
        store_keys.protocol_digest(protocol),
    )
    return server


@pytest.fixture
def server(tmp_path):
    instance = _prewarm(ReproServer("127.0.0.1", 0, ledger=tmp_path / "ledger"))
    instance.start_background()
    yield instance
    instance.stop()


def _daemon_sweep(server, **overrides):
    params = dict(shots=SHOTS, k_max=K_MAX, seed=SEED, sweep=GRID)
    params.update(overrides)
    with ServeClient(server.host, server.port, timeout=300.0) as client:
        return client.sweep("steane", **params)


def _cold_series(ledger=False, **overrides):
    kwargs = dict(
        protocol=cached_protocol("steane"),
        shots=SHOTS,
        k_max=K_MAX,
        seed=SEED,
        sweep=GRID,
        workers=1,  # the daemon always runs the sharded scheme
        ledger=ledger,
    )
    kwargs.update(overrides)
    return run_series("steane", **kwargs)


def assert_sweep_matches_series(line, series):
    """Daemon wire payload == Figure4Series, every float bit-equal."""
    result = line["result"]
    assert result["f1_exact"] == series.f1_exact
    assert len(result["estimates"]) == len(series.estimates)
    for wire, est in zip(result["estimates"], series.estimates):
        assert (
            wire["p"],
            wire["mean"],
            wire["lower"],
            wire["upper"],
            wire["tail"],
        ) == (est.p, est.mean, est.lower, est.upper, est.tail)


class TestSweepIdentity:
    def test_daemon_equals_cold_library_equals_replay(self, server):
        cold = _cold_series(ledger=False)
        computed = _daemon_sweep(server)
        assert computed["source"] == "computed"
        assert_sweep_matches_series(computed, cold)
        replayed = _daemon_sweep(server)
        assert replayed["source"] == "ledger"
        assert replayed["result"] == computed["result"]

    def test_daemon_record_satisfies_run_series(self, server, monkeypatch):
        """Cross-entry-point dedup, daemon -> CLI: the daemon's record is
        a full ledger hit for ``run_series`` (zero engine builds)."""
        _daemon_sweep(server)
        monkeypatch.setattr(
            sampler_mod,
            "make_sampler",
            lambda *a, **k: pytest.fail("daemon record missed in run_series"),
        )
        series = _cold_series(ledger=server.ledger)
        assert_sweep_matches_series(_daemon_sweep(server), series)

    def test_run_series_record_satisfies_daemon(self, tmp_path):
        """Cross-entry-point dedup, CLI -> daemon: a record written by
        ``run_series`` makes the daemon answer without computing."""
        root = tmp_path / "shared-ledger"
        cold = _cold_series(ledger=root)
        server = _prewarm(ReproServer("127.0.0.1", 0, ledger=root))
        server.start_background()
        try:
            line = _daemon_sweep(server)
            assert line["source"] == "ledger"
            assert server.stats.computes == 0
            assert_sweep_matches_series(line, cold)
        finally:
            server.stop()

    def test_direct_check_identity(self, server):
        cold = _cold_series(
            ledger=False, direct_check_at=1e-2, direct_shots=500
        )
        line = _daemon_sweep(server, direct_check_at=1e-2, direct_shots=500)
        d = line["result"]["direct"]
        assert (d["p"], d["trials"], d["failures"]) == (
            cold.direct.p,
            cold.direct.trials,
            cold.direct.failures,
        )


class TestOtherOpsIdentity:
    def test_ftcheck_identity(self, server):
        from repro.core.ftcheck import check_fault_tolerance

        violations = check_fault_tolerance(cached_protocol("steane"))
        with ServeClient(server.host, server.port, timeout=300.0) as client:
            line = client.ftcheck("steane")
        result = line["result"]
        assert result["fault_tolerant"] == (not violations)
        assert [v["rendered"] for v in result["violations"]] == [
            str(v) for v in violations
        ]

    def test_budget_identity(self, server):
        from repro.core.analysis import two_fault_error_budget

        budget = two_fault_error_budget(cached_protocol("steane"))
        with ServeClient(server.host, server.port, timeout=300.0) as client:
            line = client.budget("steane")
        result = line["result"]
        assert result["f2_exact"] == budget.f2_exact
        assert result["c2_exact"] == budget.c2_exact
        assert result["segment_pairs"] == [
            [a, b, m] for (a, b), m in sorted(budget.by_segment_pair.items())
        ]

    def test_direct_identity(self, server):
        engine = make_sampler(cached_protocol("steane"))
        cold = direct_mc(
            engine,
            E1_1(p=1e-3),
            600,
            rng=np.random.default_rng(SEED),
            workers=1,  # the daemon's sharded draw scheme
        )
        with ServeClient(server.host, server.port, timeout=300.0) as client:
            line = client.direct("steane", 1e-3, shots=600, seed=SEED)
        result = line["result"]
        assert (result["p"], result["trials"], result["failures"]) == (
            cold.p,
            cold.trials,
            cold.failures,
        )


class TestClusterBackend:
    def test_cluster_daemon_with_worker_kill_is_bit_identical(self, tmp_path):
        """A daemon whose chunk backend is two TCP workers — one rigged
        to crash after 2 chunks with its in-flight chunk unacknowledged —
        returns the byte-identical sweep payload the inline daemon does."""
        baseline = _cold_series(ledger=False)
        survivor = ClusterWorker("127.0.0.1", 0)
        dying = ClusterWorker("127.0.0.1", 0, max_chunks=2)
        for worker in (survivor, dying):
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        server = _prewarm(
            ReproServer(
                "127.0.0.1",
                0,
                ledger=tmp_path / "ledger",
                executor=ClusterExecutorFactory(
                    [dying.address, survivor.address], connect_timeout=10.0
                ),
            )
        )
        server.start_background()
        try:
            line = _daemon_sweep(server)
            assert line["source"] == "computed"
            assert_sweep_matches_series(line, baseline)
            # Same plan, same key: the cluster-computed record is a full
            # hit for a later inline daemon over the same ledger.
            inline = _prewarm(
                ReproServer("127.0.0.1", 0, ledger=server.ledger.root)
            )
            inline.start_background()
            try:
                warm = _daemon_sweep(inline)
                assert warm["source"] == "ledger"
                assert warm["result"] == line["result"]
            finally:
                inline.stop()
        finally:
            server.stop()
            for worker in (survivor, dying):
                worker.stop()


class TestQueryCliIdentity:
    def test_repro_query_json_round_trips_floats(self, server):
        """The subprocess CLI client reports the daemon's numbers exactly
        (cold CLI == daemon == library, end to end)."""
        cold = _cold_series(ledger=False)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "query",
                "--connect",
                f"{server.host}:{server.port}",
                "--json",
                "sweep",
                "steane",
                "--shots",
                str(SHOTS),
                "--k-max",
                str(K_MAX),
                "--seed",
                str(SEED),
                "--p",
                *[repr(p) for p in GRID],
            ],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "REPRO_STORE": "off",
                "REPRO_LEDGER": "off",
                "PYTHONPATH": os.pathsep.join(
                    filter(
                        None,
                        [
                            str(
                                __import__("pathlib").Path(
                                    sampler_mod.__file__
                                ).parents[2]
                            ),
                            os.environ.get("PYTHONPATH"),
                        ],
                    )
                ),
            },
        )
        line = json.loads(result.stdout)
        assert_sweep_matches_series(line, cold)
