"""Stability of the result-key scheme (``repro.store.keys``).

Ledger keys must name *what* is computed, never *how* or *where*:

* the same (protocol, model, plan) produces the same key in this
  process, in a forked/spawned child, and in a fresh interpreter —
  otherwise a daemon restart or a pool worker would silently miss
  every cached record;
* execution knobs (engine name, worker count) and derived-per-request
  data (the sweep grid) are excluded, so one record serves every
  engine and grid;
* anything that changes the drawn sample stream (seed, shots, scheme,
  slab bound, chunk identity) is included.
"""

import multiprocessing
import subprocess
import sys

import pytest

from repro.sim.noise import E1_1
from repro.sim.shard import BernoulliChunk, RowChunk, StratumChunk
from repro.store import keys as store_keys

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def digest():
    return store_keys.protocol_digest(cached_protocol("steane"))


def _series_kwargs():
    return dict(shots=4000, k_max=3, seed=2025, exact_k1=True)


class TestKeyScheme:
    def test_series_key_excludes_engine_and_grid(self, digest):
        """One tally record serves every engine and every sweep grid: the
        key has no engine or grid component at all."""
        key = store_keys.series_key(digest, None, **_series_kwargs())
        assert key is not None
        # Same inputs -> same key, trivially.
        assert key == store_keys.series_key(digest, None, **_series_kwargs())

    def test_series_key_includes_the_sample_plan(self, digest):
        base = store_keys.series_key(digest, None, **_series_kwargs())
        variants = [
            dict(_series_kwargs(), shots=4001),
            dict(_series_kwargs(), k_max=2),
            dict(_series_kwargs(), seed=2026),
            dict(_series_kwargs(), exact_k1=False),
            dict(_series_kwargs(), scheme="serial"),
            dict(_series_kwargs(), max_slab=4096),
            dict(_series_kwargs(), mem_budget=1 << 20),
            dict(_series_kwargs(), direct_check_at=1e-3),
        ]
        keys = [store_keys.series_key(digest, None, **kw) for kw in variants]
        assert len({base, *keys}) == len(variants) + 1

    def test_direct_shots_only_matter_with_direct_check(self, digest):
        """``direct_shots`` is inert without ``direct_check_at`` (no
        direct run happens), so it must not split the key."""
        a = store_keys.series_key(
            digest, None, **_series_kwargs(), direct_shots=4000
        )
        b = store_keys.series_key(
            digest, None, **_series_kwargs(), direct_shots=9999
        )
        assert a == b
        c = store_keys.series_key(
            digest, None, **_series_kwargs(), direct_check_at=1e-3,
            direct_shots=4000,
        )
        d = store_keys.series_key(
            digest, None, **_series_kwargs(), direct_check_at=1e-3,
            direct_shots=9999,
        )
        assert c != d

    def test_model_splits_the_key(self, digest):
        a = store_keys.series_key(digest, None, **_series_kwargs())
        b = store_keys.series_key(digest, E1_1(p=0.01), **_series_kwargs())
        assert a != b

    def test_chunk_key_excludes_index(self, digest):
        """Chunk position in the plan is scheduling, not content: the
        same (k, shots, entropy) slice reuses the record wherever the
        planner put it."""
        a = StratumChunk(index=0, k=2, shots=512, entropy=(77, 0))
        b = StratumChunk(index=9, k=2, shots=512, entropy=(77, 0))
        assert store_keys.chunk_key(digest, None, a) == store_keys.chunk_key(
            digest, None, b
        )
        c = StratumChunk(index=0, k=2, shots=512, entropy=(78, 0))
        assert store_keys.chunk_key(digest, None, a) != store_keys.chunk_key(
            digest, None, c
        )

    def test_chunk_key_distinguishes_types(self, digest):
        row = RowChunk(index=0, lo=0, hi=64)
        bern = BernoulliChunk(
            index=0, shots=64, entropy=(5, 1), model=E1_1(p=0.01)
        )
        keys = {
            store_keys.chunk_key(digest, None, row),
            store_keys.chunk_key(digest, None, bern),
            store_keys.chunk_key(
                digest, None, RowChunk(index=0, lo=0, hi=64, checkable_only=True)
            ),
        }
        assert None not in keys and len(keys) == 3

    def test_direct_key_plan(self, digest):
        model = E1_1(p=1e-3)
        a = store_keys.direct_key(digest, model, shots=4000, seed=2025)
        assert a == store_keys.direct_key(digest, model, shots=4000, seed=2025)
        assert a != store_keys.direct_key(digest, model, shots=4001, seed=2025)
        assert a != store_keys.direct_key(digest, model, shots=4000, seed=2026)
        assert a != store_keys.direct_key(
            digest, E1_1(p=2e-3), shots=4000, seed=2025
        )

    def test_unpicklable_model_disables_caching(self, digest):
        key = store_keys.series_key(
            digest, lambda: None, **_series_kwargs()  # unpicklable
        )
        assert key is None


_CHILD_SCRIPT = """
import json, sys
from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol
from repro.sim.noise import E1_1
from repro.sim.shard import StratumChunk
from repro.store import keys as store_keys

protocol = synthesize_protocol(get_code("steane"))
digest = store_keys.protocol_digest(protocol)
print(json.dumps({
    "digest": digest,
    "series": store_keys.series_key(
        digest, E1_1(p=0.01), shots=4000, k_max=3, seed=2025),
    "chunk": store_keys.chunk_key(
        digest, None, StratumChunk(index=3, k=2, shots=512, entropy=(77, 0))),
}))
"""


def _expected_keys():
    protocol = cached_protocol("steane")
    digest = store_keys.protocol_digest(protocol)
    return {
        "digest": digest,
        "series": store_keys.series_key(
            digest, E1_1(p=0.01), shots=4000, k_max=3, seed=2025
        ),
        "chunk": store_keys.chunk_key(
            digest,
            None,
            StratumChunk(index=3, k=2, shots=512, entropy=(77, 0)),
        ),
    }


class TestCrossInterpreterStability:
    """A daemon restart, a pool worker, or a cold CLI run must derive the
    byte-identical key for the same query, or every cache lookup silently
    misses."""

    def test_fresh_interpreter_rederives_identical_keys(self):
        import json

        result = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
            env={
                **__import__("os").environ,
                "REPRO_STORE": "off",
                "REPRO_LEDGER": "off",
            },
        )
        assert json.loads(result.stdout) == _expected_keys()

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_pool_child_rederives_identical_keys(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} unavailable")
        ctx = multiprocessing.get_context(method)
        queue = ctx.Queue()
        proc = ctx.Process(target=_mp_child, args=(queue,))
        proc.start()
        try:
            child = queue.get(timeout=120)
        finally:
            proc.join(timeout=120)
        assert child == _expected_keys()


def _mp_child(queue):
    """Re-derive the keys from scratch in the child (no inherited cache)."""
    from repro.codes.catalog import get_code
    from repro.core.protocol import synthesize_protocol

    protocol = synthesize_protocol(get_code("steane"))
    digest = store_keys.protocol_digest(protocol)
    queue.put(
        {
            "digest": digest,
            "series": store_keys.series_key(
                digest, E1_1(p=0.01), shots=4000, k_max=3, seed=2025
            ),
            "chunk": store_keys.chunk_key(
                digest,
                None,
                StratumChunk(index=3, k=2, shots=512, entropy=(77, 0)),
            ),
        }
    )
