"""Fault-injection and contract tests for the results ledger.

The ledger's one inviolable promise: **corruption never surfaces as a
wrong tally**. A truncated segment, a flipped bit, or a torn mid-append
line must quarantine the damaged record (never crash, never serve it)
while every intact record keeps verifying. The other contracts pinned
here: append-only last-put-wins semantics, canonical-JSON dedup,
compact-then-evict gc, pickling (the root travels, the index does not),
and the ``REPRO_LEDGER`` / ``resolve_ledger`` selection convention
shared with ``repro.store``.
"""

import json
import pickle

import pytest

from repro.serve.ledger import (
    ENV_VAR,
    LedgerEvaluator,
    ResultsLedger,
    active_ledger,
    default_ledger_root,
    resolve_ledger,
)


@pytest.fixture
def ledger(tmp_path):
    return ResultsLedger(tmp_path / "ledger")


def _segment_lines(ledger, kind):
    return ledger.segment_path(kind).read_bytes().splitlines(keepends=True)


def _quarantine_files(ledger):
    qdir = ledger.root / "quarantine"
    return sorted(qdir.glob("*.jsonl")) if qdir.exists() else []


class TestRoundTrip:
    def test_get_put_round_trip(self, ledger):
        record = {"trials": 4000, "failures": 3, "rate": 0.00075}
        assert ledger.get("series", "k1") is None
        assert ledger.put("series", "k1", record) is True
        assert ledger.get("series", "k1") == record
        # A fresh instance over the same root re-reads from disk.
        again = ResultsLedger(ledger.root)
        assert again.get("series", "k1") == record

    def test_floats_round_trip_bit_exactly(self, ledger):
        # repr-based JSON floats: the stored value IS the computed value.
        values = [0.1 + 0.2, 1e-323, 5.50447e-07, 3.141592653589793]
        ledger.put("series", "floats", {"values": values})
        stored = ResultsLedger(ledger.root).get("series", "floats")["values"]
        assert all(a == b for a, b in zip(stored, values))

    def test_none_key_is_inert(self, ledger):
        assert ledger.put("series", None, {"x": 1}) is False
        assert ledger.get("series", None) is None

    def test_last_put_wins(self, ledger):
        ledger.put("series", "k", {"v": 1})
        ledger.put("series", "k", {"v": 2})
        assert ledger.get("series", "k") == {"v": 2}
        # Append-only: both lines are on disk, the latest is live.
        assert len(_segment_lines(ledger, "series")) == 2
        assert ResultsLedger(ledger.root).get("series", "k") == {"v": 2}

    def test_dedup_put(self, ledger):
        assert ledger.put("series", "k", {"v": [1.5, 2]}) is True
        # Equal record (post JSON round-trip) -> no second line.
        assert ledger.put("series", "k", {"v": [1.5, 2]}) is False
        assert len(_segment_lines(ledger, "series")) == 1
        assert ledger.stats.dedup_puts == 1

    def test_kinds_are_validated(self, ledger):
        with pytest.raises(ValueError):
            ledger.put("../escape", "k", {})
        with pytest.raises(ValueError):
            ledger.get("UPPER", "k")

    def test_entries_newest_first(self, ledger):
        ledger.put("series", "a", {"v": 1})
        ledger.put("series", "b", {"v": 2})
        ledger.put("chunk", "c", {"v": 3})
        entries = list(ledger.entries())
        assert [(e.kind, e.key) for e in entries] == [
            ("chunk", "c"),
            ("series", "b"),
            ("series", "a"),
        ]
        assert [e.key for e in ledger.entries("series")] == ["b", "a"]


class TestFaultInjection:
    """Damage a segment every way a crash or disk can; never a wrong tally."""

    def _seed(self, ledger):
        ledger.put("series", "good1", {"trials": 100, "failures": 1})
        ledger.put("series", "good2", {"trials": 200, "failures": 2})
        ledger.put("series", "victim", {"trials": 300, "failures": 3})

    def test_truncated_segment_tail(self, ledger):
        """A segment cut mid-line (torn final write) quarantines only the
        torn line; intact records keep serving."""
        self._seed(ledger)
        path = ledger.segment_path("series")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 17])  # cut into the last line
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "victim") is None  # never a wrong tally
        assert fresh.get("series", "good1") == {"trials": 100, "failures": 1}
        assert fresh.get("series", "good2") == {"trials": 200, "failures": 2}
        assert fresh.stats.quarantined == 1
        assert len(_quarantine_files(fresh)) == 1

    def test_bit_flip_quarantined_not_served(self, ledger):
        """A flipped payload bit fails digest verification: the record is
        quarantined, never returned with the altered value."""
        self._seed(ledger)
        path = ledger.segment_path("series")
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip '300' -> '700' inside the victim's payload.
        assert b"300" in lines[2]
        lines[2] = lines[2].replace(b"300", b"700")
        path.write_bytes(b"".join(lines))
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "victim") is None
        assert fresh.get("series", "good1") == {"trials": 100, "failures": 1}
        assert fresh.stats.quarantined == 1

    def test_mid_append_crash_then_append(self, ledger):
        """A torn half-written line (no newline, invalid JSON) is swept to
        quarantine and the segment rewritten clean, so the *next* append
        cannot extend the torn tail into a franken-line."""
        self._seed(ledger)
        path = ledger.segment_path("series")
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "series", "key": "torn", "ts": 1.0, "rec')
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "good1") == {"trials": 100, "failures": 1}
        assert fresh.stats.quarantined == 1
        # The segment was rewritten without the torn tail...
        assert all(
            raw.endswith(b"\n") for raw in _segment_lines(fresh, "series")
        )
        # ...so appending works and every line still verifies.
        assert fresh.put("series", "after", {"trials": 1, "failures": 0}) is True
        reread = ResultsLedger(ledger.root)
        assert reread.get("series", "after") == {"trials": 1, "failures": 0}
        assert reread.stats.quarantined == 0

    def test_garbage_segment_never_crashes(self, ledger):
        path = ledger.segment_path("series")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff not json at all\n\n{}\n")
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "anything") is None
        assert fresh.stats.quarantined == 2  # blank line skipped, 2 bad
        assert fresh.put("series", "k", {"v": 1}) is True
        assert ResultsLedger(ledger.root).get("series", "k") == {"v": 1}

    def test_wrong_kind_field_rejected(self, ledger):
        """A verified line replayed into the wrong segment is rejected
        (key collisions across kinds cannot cross-contaminate)."""
        ledger.put("chunk", "k", {"v": 1})
        chunk_line = _segment_lines(ledger, "chunk")[0]
        path = ledger.segment_path("series")
        path.write_bytes(chunk_line)
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "k") is None
        assert fresh.stats.quarantined == 1

    def test_verify_reports_and_cleans(self, ledger):
        self._seed(ledger)
        path = ledger.segment_path("series")
        path.write_bytes(path.read_bytes() + b"garbage\n")
        report = ledger.verify()
        assert report == {
            "kinds": 1,
            "records": 3,
            "bytes": report["bytes"],
            "quarantined": 1,
        }
        # Second verify over the rewritten segment is clean.
        assert ledger.verify()["quarantined"] == 0


class TestGc:
    def test_gc_compacts_superseded_lines(self, ledger):
        for v in range(5):
            ledger.put("series", "k", {"v": v})
        assert len(_segment_lines(ledger, "series")) == 5
        result = ledger.gc(10**9)
        assert result == {"evicted": 0, "bytes": result["bytes"], "records": 1}
        assert len(_segment_lines(ledger, "series")) == 1
        assert ResultsLedger(ledger.root).get("series", "k") == {"v": 4}

    def test_gc_evicts_oldest_first(self, ledger):
        ledger.put("series", "old", {"v": 1})
        ledger.put("series", "new", {"v": 2})
        keep = next(iter(ledger.entries("series"))).size  # newest entry
        result = ledger.gc(keep)
        assert result["evicted"] == 1
        fresh = ResultsLedger(ledger.root)
        assert fresh.get("series", "old") is None
        assert fresh.get("series", "new") == {"v": 2}

    def test_gc_to_zero_unlinks_segments(self, ledger):
        ledger.put("series", "k", {"v": 1})
        result = ledger.gc(0)
        assert result == {"evicted": 1, "bytes": 0, "records": 0}
        assert not ledger.segment_path("series").exists()


class TestSelection:
    def test_pickle_round_trip(self, ledger):
        ledger.put("series", "k", {"v": 7})
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.root == ledger.root
        assert clone.get("series", "k") == {"v": 7}
        # Stats/index do not travel: the clone starts fresh.
        assert clone.stats.hits == 1

    def test_env_selection(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "from-env"))
        ledger = active_ledger()
        assert ledger is not None and ledger.root == tmp_path / "from-env"
        for value in ("off", "0", "none", "false", "", "  OFF  "):
            monkeypatch.setenv(ENV_VAR, value)
            assert active_ledger() is None
        monkeypatch.delenv(ENV_VAR)
        assert active_ledger().root == default_ledger_root()

    def test_resolve_ledger_convention(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "off")
        assert resolve_ledger(None) is None  # ambient off
        assert resolve_ledger(False) is None
        instance = ResultsLedger(tmp_path / "inst")
        assert resolve_ledger(instance) is instance
        assert resolve_ledger(tmp_path / "path").root == tmp_path / "path"
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "amb"))
        assert resolve_ledger(None).root == tmp_path / "amb"

    def test_ledger_evaluator_without_ledger_is_passthrough(self):
        class FakeInner:
            def __init__(self):
                self.engine = None
                self.mapped = []

            def map(self, chunks):
                self.mapped.extend(chunks)
                for chunk in chunks:
                    yield chunk

            def close(self):
                pass

        inner = FakeInner()
        wrapper = LedgerEvaluator(inner, None)

        class C:
            index = 0
            trials = 0

        out = list(wrapper.map([C(), C()]))
        assert len(out) == 2 and len(inner.mapped) == 2
        assert wrapper.chunk_hits == 0 and wrapper.chunk_computes == 2
