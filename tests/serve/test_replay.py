"""Ledger-backed reuse is invisible in the numbers.

Three layers of the same promise, bottom-up:

* :class:`LedgerEvaluator` — a warm ``map()`` dispatches **zero**
  chunks to the wrapped evaluator and merges to the bit-identical
  partial a cold run produces; a corrupted chunk record is recomputed,
  never served;
* :meth:`SubsetSampler.from_tallies` — the estimator-only replay
  sampler reproduces ``estimate``/``curve``/``p_ceiling`` bit-exactly
  from recorded tallies (no engine, no RNG);
* :func:`run_series` / :func:`run_figure4` — a ledger hit returns the
  bit-identical series without ever building an engine, and
  ``ledger=False`` (the ``--no-ledger`` hatch) bypasses it entirely.
"""

import numpy as np
import pytest

import repro.sim.sampler as sampler_mod
from repro.experiments.figure4 import run_figure4, run_series
from repro.serve.ledger import LedgerEvaluator, ResultsLedger
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator, merge_partials
from repro.sim.subset import SubsetSampler

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def steane_engine():
    return make_sampler(cached_protocol("steane"))


@pytest.fixture
def ledger(tmp_path):
    return ResultsLedger(tmp_path / "ledger")


def _plan(evaluator):
    return evaluator.planner.plan_rows(checkable_only=True, threshold=1)


def assert_partials_equal(a, b):
    assert a.trials == b.trials and a.failures == b.failures
    assert a.heavy == b.heavy
    np.testing.assert_array_equal(a.x_hist, b.x_hist)
    np.testing.assert_array_equal(a.z_hist, b.z_hist)
    np.testing.assert_array_equal(a.rows, b.rows)


class TestLedgerEvaluator:
    def test_warm_map_dispatches_zero_chunks(self, steane_engine, ledger):
        inline = ShardedEvaluator(steane_engine, max_slab=16)
        baseline = inline.reduce(_plan(inline))

        cold = LedgerEvaluator(ShardedEvaluator(steane_engine, max_slab=16), ledger)
        merged_cold = merge_partials(cold.map(_plan(cold)))
        assert cold.chunk_hits == 0 and cold.chunk_computes > 0
        assert_partials_equal(merged_cold, baseline)

        class Exploding(ShardedEvaluator):
            def map(self, chunks):
                chunks = list(chunks)
                if chunks:
                    raise AssertionError("warm run dispatched chunks")
                return iter(())

        warm = LedgerEvaluator(Exploding(steane_engine, max_slab=16), ledger)
        merged_warm = merge_partials(warm.map(_plan(warm)))
        assert warm.chunk_hits == cold.chunk_computes
        assert warm.chunk_computes == 0
        assert_partials_equal(merged_warm, baseline)

    def test_partial_misses_compute_only_the_gap(self, steane_engine, ledger):
        cold = LedgerEvaluator(ShardedEvaluator(steane_engine, max_slab=16), ledger)
        chunks = list(_plan(cold))
        # Prime the ledger with a prefix of the plan only.
        list(cold.map(chunks[: len(chunks) // 2]))
        warm = LedgerEvaluator(ShardedEvaluator(steane_engine, max_slab=16), ledger)
        merged = merge_partials(warm.map(chunks))
        assert warm.chunk_hits == len(chunks) // 2
        assert warm.chunk_computes == len(chunks) - len(chunks) // 2
        inline = ShardedEvaluator(steane_engine, max_slab=16)
        assert_partials_equal(merged, inline.reduce(chunks))

    def test_corrupt_chunk_record_recomputed_not_served(
        self, steane_engine, ledger
    ):
        cold = LedgerEvaluator(ShardedEvaluator(steane_engine, max_slab=16), ledger)
        baseline = merge_partials(cold.map(_plan(cold)))
        # Flip bits across the whole chunk segment.
        path = ledger.segment_path("chunk")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        fresh = ResultsLedger(ledger.root)
        warm = LedgerEvaluator(
            ShardedEvaluator(steane_engine, max_slab=16), fresh
        )
        merged = merge_partials(warm.map(_plan(warm)))
        assert warm.chunk_computes >= 1  # the damaged record was re-run
        assert fresh.stats.quarantined >= 1
        assert_partials_equal(merged, baseline)

    def test_on_partial_progress_stream(self, steane_engine, ledger):
        events = []
        evaluator = LedgerEvaluator(
            ShardedEvaluator(steane_engine, max_slab=16),
            ledger,
            on_partial=events.append,
        )
        merged = merge_partials(evaluator.map(_plan(evaluator)))
        assert len(events) == evaluator.chunk_computes
        assert {e["source"] for e in events} == {"computed"}
        assert sum(e["trials"] for e in events) == merged.trials


class TestFromTallies:
    def test_replay_estimates_bit_identical(self, steane_engine, ledger):
        protocol = cached_protocol("steane")
        grid = [1e-4, 1e-3, 1e-2, 1e-1]
        with SubsetSampler.for_protocol(
            protocol,
            engine="batched",
            k_max=2,
            rng=np.random.default_rng(7),
            ledger=False,
        ) as sampler:
            sampler.enumerate_k1_exact()
            sampler.sample(1500)
            live = sampler.curve(grid)
            strata = {
                k: {
                    "trials": s.trials,
                    "failures": s.failures,
                    "exact": s.exact,
                }
                for k, s in sampler.strata.items()
            }
            locations = sampler.locations

        replay = SubsetSampler.from_tallies(locations, strata, k_max=2)
        replayed = replay.curve(grid)
        assert replay.p_ceiling == sampler.p_ceiling
        for a, b in zip(live, replayed):
            assert (a.p, a.mean, a.lower, a.upper, a.tail) == (
                b.p,
                b.mean,
                b.lower,
                b.upper,
                b.tail,
            )

    def test_accepts_string_keys_and_tuple_specs(self):
        locations = cached_protocol("steane")
        from repro.sim.frame import protocol_locations

        locs = protocol_locations(locations)
        a = SubsetSampler.from_tallies(
            locs,
            {
                0: {"trials": 1, "failures": 0, "exact": True},
                1: {"trials": 10, "failures": 1, "exact": False},
            },
        )
        b = SubsetSampler.from_tallies(
            locs, {"0": (1, 0, True), "1": (10, 1, False)}
        )
        ea, eb = a.estimate(1e-3), b.estimate(1e-3)
        assert (ea.mean, ea.lower, ea.upper) == (eb.mean, eb.lower, eb.upper)


class TestRunSeriesLedger:
    GRID = [1e-4, 1e-3, 1e-2]

    def _run(self, ledger, **kwargs):
        return run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=1200,
            k_max=2,
            sweep=self.GRID,
            seed=11,
            ledger=ledger,
            **kwargs,
        )

    @staticmethod
    def assert_series_equal(a, b):
        assert a.code == b.code and a.f1_exact == b.f1_exact
        assert len(a.estimates) == len(b.estimates)
        for ea, eb in zip(a.estimates, b.estimates):
            assert (ea.p, ea.mean, ea.lower, ea.upper, ea.tail) == (
                eb.p,
                eb.mean,
                eb.lower,
                eb.upper,
                eb.tail,
            )

    def test_replay_is_bit_identical_with_zero_engine_builds(
        self, ledger, monkeypatch
    ):
        cold = self._run(ledger)
        # A warm run must not even construct an engine.
        monkeypatch.setattr(
            sampler_mod,
            "make_sampler",
            lambda *a, **k: pytest.fail("ledger hit built an engine"),
        )
        warm = self._run(ledger)
        self.assert_series_equal(cold, warm)

    def test_one_record_serves_any_grid(self, ledger, monkeypatch):
        self._run(ledger)
        monkeypatch.setattr(
            sampler_mod,
            "make_sampler",
            lambda *a, **k: pytest.fail("ledger hit built an engine"),
        )
        other = run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=1200,
            k_max=2,
            sweep=[3e-4, 2e-3],  # a grid never computed
            seed=11,
            ledger=ledger,
        )
        assert [e.p for e in other.estimates] == [3e-4, 2e-3]

    def test_no_ledger_hatch_is_bit_identical(self, ledger):
        cold = self._run(ledger)
        off = self._run(False)
        self.assert_series_equal(cold, off)

    def test_different_plan_misses(self, ledger):
        self._run(ledger)
        before = len(list(ledger.entries("series")))
        run_series(
            "steane",
            protocol=cached_protocol("steane"),
            shots=1200,
            k_max=2,
            sweep=self.GRID,
            seed=12,  # different seed -> different key -> recompute
            ledger=ledger,
        )
        assert len(list(ledger.entries("series"))) == before + 1

    def test_run_figure4_threads_the_ledger(self, ledger):
        series = run_figure4(
            ["steane"], shots=1000, sweep=self.GRID, ledger=ledger
        )
        assert len(list(ledger.entries("series"))) == 1
        warm = run_figure4(
            ["steane"], shots=1000, sweep=self.GRID, ledger=ledger
        )
        self.assert_series_equal(series[0], warm[0])
