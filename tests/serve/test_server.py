"""Contract tests for the ``repro serve`` daemon (in-process, real TCP).

What must hold on the wire:

* request multiplexing — one connection, many in-flight ids, responses
  correlated by ``id``; malformed or unknown requests produce ``error``
  events, never a dropped connection or a dead server;
* **exactly-one-compute** — N concurrent identical requests run the
  simulation once: one ``computed`` response, N-1 ``coalesced``, all
  carrying the same payload; distinct keys compute independently;
* warm answers — a repeated query is served from the ledger with zero
  engine dispatches, and a daemon restarted over the same ledger root
  resumes fully warm;
* a client that disconnects mid-stream never cancels the computation
  or poisons the ledger: the record lands and the next client gets it.
"""

import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError, parse_hostport
from repro.serve.server import ReproServer
from repro.store import keys as store_keys

from ..conftest import cached_protocol

SWEEP_PARAMS = dict(shots=800, k_max=2, seed=5, sweep=[1e-3, 1e-2])


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {message}")


@pytest.fixture
def ledger_root(tmp_path):
    return tmp_path / "ledger"


@pytest.fixture
def server(ledger_root):
    instance = ReproServer("127.0.0.1", 0, ledger=ledger_root)
    # Synthesis is session-cached in-process; pre-warm the protocol tier
    # so per-test latency is the simulation, not SAT.
    protocol = cached_protocol("steane")
    instance._protocols[("steane", "heuristic", "optimal")] = (
        protocol,
        store_keys.protocol_digest(protocol),
    )
    instance.start_background()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port, timeout=120.0) as c:
        yield c


class TestWire:
    def test_parse_hostport(self):
        assert parse_hostport("10.0.0.1:7790") == ("10.0.0.1", 7790)
        assert parse_hostport(":7791") == ("127.0.0.1", 7791)
        assert parse_hostport("somehost") == ("somehost", 7790)

    def test_ping_and_stats(self, client):
        assert client.ping()["ok"] is True
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["computes"] == 0

    def test_unknown_op_is_an_error_event(self, client, server):
        with pytest.raises(ServeError, match="unknown op"):
            client.request("frobnicate")
        # The connection (and the server) survive the error.
        assert client.ping()["ok"] is True
        assert server.stats.errors == 1

    def test_missing_code_is_an_error_event(self, client):
        with pytest.raises(ServeError, match="code"):
            client.request("sweep")

    def test_malformed_json_line_is_an_error_event(self, client):
        client._sock.sendall(b"this is not json\n")
        # The error response carries id=None; collect it manually.
        import json

        line = json.loads(client._file.readline())
        assert line["event"] == "error"
        assert client.ping()["ok"] is True

    def test_multiplexed_requests_one_connection(self, client):
        rid_a = client.submit("sweep", code="steane", **SWEEP_PARAMS)
        rid_b = client.submit("ping")
        rid_c = client.submit("stats")
        # Collect out of submission order; buffering must sort it out.
        assert client.collect(rid_c)["result"]["requests"] >= 1
        assert client.collect(rid_b)["result"]["ok"] is True
        assert client.collect(rid_a)["result"]["estimates"]


class TestComputeAndLedger:
    def test_sweep_computes_then_ledger_hits(self, client, server):
        progress = []
        first = client.sweep(
            "steane", on_progress=progress.append, **SWEEP_PARAMS
        )
        assert first["source"] == "computed"
        assert first["result"]["estimates"]
        assert progress, "compute streamed no progress events"
        second = client.sweep("steane", **SWEEP_PARAMS)
        assert second["source"] == "ledger"
        assert second["result"] == first["result"]
        assert second["key"] == first["key"]
        assert server.stats.computes == 1

    def test_one_record_serves_every_grid(self, client, server):
        client.sweep("steane", **SWEEP_PARAMS)
        other_grid = dict(SWEEP_PARAMS, sweep=[3e-4, 2e-3, 5e-2])
        warm = client.sweep("steane", **other_grid)
        assert warm["source"] == "ledger"
        assert [e["p"] for e in warm["result"]["estimates"]] == [
            3e-4,
            2e-3,
            5e-2,
        ]
        assert server.stats.computes == 1

    def test_ftcheck_budget_direct_dedup(self, client, server):
        for op, params in [
            ("ftcheck", {}),
            ("budget", {}),
            ("direct", {"p": 1e-3, "shots": 400}),
        ]:
            first = client.request(op, code="steane", **params)
            assert first["source"] == "computed"
            again = client.request(op, code="steane", **params)
            assert again["source"] == "ledger"
            assert again["result"] == first["result"]
        assert server.stats.computes == 3

    def test_engine_is_resident_across_requests(self, client, server):
        client.sweep("steane", **SWEEP_PARAMS)
        client.direct("steane", 1e-3, shots=400)
        assert server.stats.engine_compiles == 1
        assert server.stats.engine_hits >= 1

    def test_restart_resumes_fully_warm(self, server, ledger_root):
        with ServeClient(server.host, server.port) as c:
            cold = c.sweep("steane", **SWEEP_PARAMS)
        server.stop()
        reborn = ReproServer("127.0.0.1", 0, ledger=ledger_root)
        reborn.start_background()
        try:
            with ServeClient(reborn.host, reborn.port) as c:
                warm = c.sweep("steane", **SWEEP_PARAMS)
            assert warm["source"] == "ledger"
            assert warm["result"] == cold["result"]
            assert reborn.stats.computes == 0
            assert reborn.stats.engine_compiles == 0
        finally:
            reborn.stop()

    def test_shutdown_op_stops_the_server(self, server):
        with ServeClient(server.host, server.port) as c:
            assert c.shutdown() == {"stopping": True}
        _wait_for(
            lambda: server._thread is None or not server._thread.is_alive(),
            message="server thread exit",
        )


class TestConcurrency:
    def _gate_sweep(self, server):
        """Make every sweep compute block on a release event."""
        gate = threading.Event()
        original = server._compute_sweep

        def gated(protocol, digest, norm, model, progress):
            assert gate.wait(timeout=60), "gate never released"
            return original(protocol, digest, norm, model, progress)

        server._compute_sweep = gated
        return gate

    def test_identical_concurrent_requests_compute_once(self, server):
        gate = self._gate_sweep(server)
        with ServeClient(server.host, server.port) as c1, ServeClient(
            server.host, server.port
        ) as c2, ServeClient(server.host, server.port) as c3:
            rid1 = c1.submit("sweep", code="steane", **SWEEP_PARAMS)
            _wait_for(
                lambda: server.stats.computes == 1, message="first compute"
            )
            rid2 = c2.submit("sweep", code="steane", **SWEEP_PARAMS)
            rid3 = c3.submit("sweep", code="steane", **SWEEP_PARAMS)
            _wait_for(
                lambda: server.stats.coalesced == 2, message="coalescing"
            )
            gate.set()
            lines = [c1.collect(rid1), c2.collect(rid2), c3.collect(rid3)]
        assert server.stats.computes == 1
        assert sorted(line["source"] for line in lines) == [
            "coalesced",
            "coalesced",
            "computed",
        ]
        assert lines[0]["result"] == lines[1]["result"] == lines[2]["result"]

    def test_distinct_keys_compute_independently(self, server):
        gate = self._gate_sweep(server)
        other = dict(SWEEP_PARAMS, seed=6)
        with ServeClient(server.host, server.port) as c1, ServeClient(
            server.host, server.port
        ) as c2:
            rid1 = c1.submit("sweep", code="steane", **SWEEP_PARAMS)
            rid2 = c2.submit("sweep", code="steane", **other)
            _wait_for(
                lambda: server.stats.computes == 2, message="both computes"
            )
            assert server.stats.coalesced == 0
            gate.set()
            r1, r2 = c1.collect(rid1), c2.collect(rid2)
        assert r1["source"] == r2["source"] == "computed"
        assert r1["key"] != r2["key"]

    def test_failed_compute_propagates_to_coalesced_waiters(self, server):
        original = server._compute_sweep

        def exploding(protocol, digest, norm, model, progress):
            time.sleep(0.2)  # hold the inflight slot long enough to join
            raise RuntimeError("engine on fire")

        server._compute_sweep = exploding
        try:
            with ServeClient(server.host, server.port) as c1, ServeClient(
                server.host, server.port
            ) as c2:
                rid1 = c1.submit("sweep", code="steane", **SWEEP_PARAMS)
                _wait_for(
                    lambda: server.stats.computes == 1, message="compute"
                )
                rid2 = c2.submit("sweep", code="steane", **SWEEP_PARAMS)
                with pytest.raises(ServeError, match="engine on fire"):
                    c1.collect(rid1)
                with pytest.raises(ServeError, match="engine on fire"):
                    c2.collect(rid2)
        finally:
            server._compute_sweep = original
        # The failure was not ledgered; a retry recomputes and succeeds.
        with ServeClient(server.host, server.port) as c:
            assert c.sweep("steane", **SWEEP_PARAMS)["source"] == "computed"

    def test_disconnect_mid_stream_never_cancels_the_compute(self, server):
        gate = self._gate_sweep(server)
        client = ServeClient(server.host, server.port)
        client.submit("sweep", code="steane", **SWEEP_PARAMS)
        _wait_for(lambda: server.stats.computes == 1, message="compute start")
        client.close()  # walk away mid-computation
        gate.set()
        # The record still lands in the ledger...
        _wait_for(
            lambda: list(server.ledger.entries("series")),
            message="orphaned record to be ledgered",
        )
        _wait_for(lambda: not server._inflight, message="inflight cleanup")
        # ...and the next client is served from it, without recompute.
        with ServeClient(server.host, server.port) as c:
            line = c.sweep("steane", **SWEEP_PARAMS)
        assert line["source"] == "ledger"
        assert server.stats.computes == 1
