"""Test package (enables relative imports of the shared conftest)."""
