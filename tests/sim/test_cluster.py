"""Tests for the multi-node chunk execution backend (``repro.sim.cluster``).

Mirrors ``tests/sim/test_shard.py`` one level up the distribution stack
and pins the cluster path's contracts:

* **wire round-trips** — chunk specs and partials survive the
  length-prefixed pickle framing, and the versioned handshake refuses
  mismatched peers instead of desyncing;
* **exactly-once merging** — a worker killed mid-stream gets its
  unacknowledged chunk requeued to the survivors and the merged
  :class:`~repro.sim.shard.ShardPartial` stays bit-identical to the
  inline run (never double-counted);
* **adaptive slab sizing** — :class:`~repro.sim.shard.AdaptiveSlabPolicy`
  never sizes a slab whose estimated footprint exceeds the memory
  budget, on either backend;
* **per-consumer parity** — every routed consumer produces bit-identical
  results on a two-worker localhost cluster and ``workers=1`` inline.
"""

import socket
import threading

import numpy as np
import pytest

from repro.sim.cluster import (
    ClusterError,
    ClusterEvaluator,
    ClusterExecutorFactory,
    ClusterProtocolError,
    ClusterWorker,
    PROTOCOL_VERSION,
    parse_hostports,
    recv_frame,
    send_frame,
)
from repro.sim.sampler import make_sampler
from repro.sim.shard import (
    AdaptiveSlabPolicy,
    BernoulliChunk,
    DictChunk,
    PairChunk,
    RowChunk,
    ShardedEvaluator,
    StratumChunk,
    engine_payload,
    parse_mem_budget,
    resolve_evaluator,
)
from repro.sim.subset import SubsetSampler, direct_mc
from repro.sim.noise import E1_1

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def steane_engine():
    return make_sampler(cached_protocol("steane"))


@pytest.fixture
def spin_workers():
    """Factory starting in-process ``ClusterWorker`` servers on real
    localhost TCP sockets; all stopped at teardown."""
    started: list[ClusterWorker] = []

    def factory(count: int = 2, **kwargs) -> list[tuple[str, int]]:
        workers = [
            ClusterWorker("127.0.0.1", 0, **kwargs) for _ in range(count)
        ]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        started.extend(workers)
        return [worker.address for worker in workers]

    yield factory
    for worker in started:
        worker.stop()


class TestWireFormat:
    def test_chunk_specs_round_trip_frames(self):
        """Every chunk-spec type survives the framing byte-for-byte."""
        specs = [
            StratumChunk(index=0, k=2, shots=500, entropy=(77, 0)),
            BernoulliChunk(index=1, shots=64, entropy=(5, 1), model=E1_1(p=0.01)),
            RowChunk(index=2, lo=10, hi=74, checkable_only=True, threshold=1),
            PairChunk(index=3, lo=0, hi=9),
            DictChunk(index=4, dicts=({("prep", 0): 3},), threshold=2),
        ]
        left, right = socket.socketpair()
        try:
            for spec in specs:
                send_frame(left, ("chunk", spec))
            for spec in specs:
                kind, received = recv_frame(right)
                assert kind == "chunk"
                assert received == spec
        finally:
            left.close()
            right.close()

    def test_recv_frame_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_handshake_round_trip(self, steane_engine, spin_workers):
        (address,) = spin_workers(1)
        protocol, name, judge = engine_payload(steane_engine)
        evaluator = ClusterEvaluator(steane_engine, [address], max_slab=32)
        links = evaluator._ensure_links()
        assert len(links) == 1
        assert links[0].info["locations"] == len(steane_engine.locations)
        assert (protocol, name) == (steane_engine.protocol, "batched")
        evaluator.close()

    def test_version_mismatch_rejected(self, steane_engine, spin_workers):
        """A worker refuses a future-version coordinator with a reason."""
        import repro.sim.cluster as cluster_module

        (address,) = spin_workers(1)
        payload = (*engine_payload(steane_engine), 64)
        sock = socket.create_connection(address, timeout=5)
        try:
            send_frame(
                sock,
                ("hello", cluster_module._MAGIC, PROTOCOL_VERSION + 1, payload),
            )
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply[0] == "reject"
        assert "version mismatch" in reply[1]

    def test_bad_magic_rejected(self, steane_engine, spin_workers):
        (address,) = spin_workers(1)
        sock = socket.create_connection(address, timeout=5)
        try:
            send_frame(sock, ("hello", b"NOT-REPRO", PROTOCOL_VERSION, None))
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply[0] == "reject"
        assert "magic" in reply[1]

    def test_coordinator_raises_on_reject(self, steane_engine):
        """The coordinator surfaces a worker's reject as a protocol error."""
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)

        def reject_once():
            conn, _ = server.accept()
            recv_frame(conn)
            send_frame(conn, ("reject", "wrong era"))
            conn.close()

        thread = threading.Thread(target=reject_once, daemon=True)
        thread.start()
        try:
            evaluator = ClusterEvaluator(
                steane_engine, [server.getsockname()[:2]], max_slab=32
            )
            with pytest.raises(ClusterProtocolError, match="wrong era"):
                evaluator._ensure_links()
        finally:
            thread.join(timeout=5)
            server.close()

    def test_parse_hostports(self):
        assert parse_hostports("a:1,b:2") == (("a", 1), ("b", 2))
        assert parse_hostports([("h", 9)]) == (("h", 9),)
        assert parse_hostports("[::1]:5") == (("[::1]", 5),)
        with pytest.raises(ValueError):
            parse_hostports("")
        with pytest.raises(ValueError):
            parse_hostports("noport")

    def test_unregistered_engine_refused(self):
        class FakeEngine:
            name = "batched"
            locations = []

        with pytest.raises(ValueError, match="registered engines"):
            ClusterEvaluator(FakeEngine(), [("127.0.0.1", 1)])


class TestAdaptiveSlabPolicy:
    def test_slab_never_exceeds_budget(self, steane_engine):
        """The invariant the policy exists for: estimated slab footprint
        stays inside the budget for any budget that fits one config."""
        policy_probe = AdaptiveSlabPolicy(mem_budget=1)
        per_config = policy_probe.bytes_per_config(steane_engine)
        for budget in (per_config, 10_000, 123_456, 1 << 20, 1 << 30):
            policy = AdaptiveSlabPolicy(mem_budget=budget)
            slab = policy.slab_for(steane_engine)
            assert slab >= 1
            if budget >= per_config:
                assert slab * per_config <= budget

    def test_slab_monotone_in_budget(self, steane_engine):
        slabs = [
            AdaptiveSlabPolicy(mem_budget=budget).slab_for(steane_engine)
            for budget in (1 << 12, 1 << 16, 1 << 20, 1 << 24)
        ]
        assert slabs == sorted(slabs)

    def test_tiny_budget_floors_at_one_config(self, steane_engine):
        assert AdaptiveSlabPolicy(mem_budget=1).slab_for(steane_engine) == 1

    def test_ceiling_caps_huge_budgets(self, steane_engine):
        policy = AdaptiveSlabPolicy(mem_budget=1 << 60, ceiling=4096)
        assert policy.slab_for(steane_engine) == 4096

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdaptiveSlabPolicy(mem_budget=0)

    def test_parse_mem_budget(self):
        assert parse_mem_budget("4096") == 4096
        assert parse_mem_budget("64K") == 64 << 10
        assert parse_mem_budget("2m") == 2 << 20
        assert parse_mem_budget("1GiB") == 1 << 30
        assert parse_mem_budget(512) == 512
        with pytest.raises(ValueError):
            parse_mem_budget("lots")
        with pytest.raises(ValueError):
            parse_mem_budget("-3")

    def test_sharded_evaluator_takes_mem_budget(self, steane_engine):
        budget = 1 << 20
        evaluator = ShardedEvaluator(steane_engine, mem_budget=budget)
        expected = AdaptiveSlabPolicy(budget).slab_for(steane_engine)
        assert evaluator.max_slab == expected
        assert evaluator.planner.max_slab == expected

    def test_cluster_evaluator_takes_mem_budget(self, steane_engine):
        budget = 1 << 20
        evaluator = ClusterEvaluator(
            steane_engine, [("127.0.0.1", 1)], mem_budget=budget
        )
        expected = AdaptiveSlabPolicy(budget).slab_for(steane_engine)
        assert evaluator.max_slab == expected
        # The budget-derived bound also travels to workers in the header.
        assert evaluator._header["max_slab"] == expected

    def test_resolve_evaluator_priority(self, steane_engine):
        # Explicit max_slab wins over mem_budget; mem_budget over default.
        explicit = resolve_evaluator(
            steane_engine, max_slab=123, mem_budget=1 << 20
        )
        assert explicit.max_slab == 123
        adaptive = resolve_evaluator(steane_engine, mem_budget=1 << 20)
        assert adaptive.max_slab == AdaptiveSlabPolicy(1 << 20).slab_for(
            steane_engine
        )
        defaulted = resolve_evaluator(steane_engine, default_slab=777)
        assert defaulted.max_slab == 777

    def test_budgeted_run_matches_explicit_slab(self, steane_engine):
        """A mem-budget run is just a re-slabbed plan: same totals as the
        equivalent explicit max_slab (enumerations are slab-invariant)."""
        budget = 1 << 18
        slab = AdaptiveSlabPolicy(budget).slab_for(steane_engine)
        budgeted = ShardedEvaluator(steane_engine, mem_budget=budget)
        explicit = ShardedEvaluator(steane_engine, max_slab=slab)
        merged_budgeted = budgeted.reduce(
            budgeted.planner.plan_rows(checkable_only=True)
        )
        merged_explicit = explicit.reduce(
            explicit.planner.plan_rows(checkable_only=True)
        )
        assert merged_budgeted.trials == merged_explicit.trials
        assert merged_budgeted.heavy == merged_explicit.heavy


class TestExactlyOnceMerging:
    def test_worker_kill_mid_stream_requeues_bit_identical(
        self, steane_engine, spin_workers
    ):
        """A worker that dies after 2 chunks (unacknowledged in-flight
        chunk dropped) must not lose or double-count anything."""
        (survivor,) = spin_workers(1)
        (dying,) = spin_workers(1, max_chunks=2)
        inline = ShardedEvaluator(steane_engine, max_slab=16)
        baseline = inline.reduce(
            inline.planner.plan_rows(checkable_only=True, threshold=1)
        )
        with ClusterEvaluator(
            steane_engine, [dying, survivor], max_slab=16
        ) as evaluator:
            merged = evaluator.reduce(
                evaluator.planner.plan_rows(checkable_only=True, threshold=1)
            )
        assert merged.trials == baseline.trials
        assert merged.heavy == baseline.heavy
        np.testing.assert_array_equal(merged.x_hist, baseline.x_hist)
        np.testing.assert_array_equal(merged.z_hist, baseline.z_hist)
        np.testing.assert_array_equal(merged.rows, baseline.rows)

    def test_all_workers_dead_raises(self, steane_engine, spin_workers):
        (address,) = spin_workers(1, max_chunks=1)
        with pytest.raises(ClusterError, match="disconnected"):
            with ClusterEvaluator(
                steane_engine, [address], max_slab=8
            ) as evaluator:
                evaluator.reduce(
                    evaluator.planner.plan_rows(checkable_only=True)
                )

    def test_unreachable_worker_skipped_if_any_up(
        self, steane_engine, spin_workers
    ):
        (address,) = spin_workers(1)
        dead = ("127.0.0.1", _free_port())
        with ClusterEvaluator(
            steane_engine, [dead, address], max_slab=64, connect_timeout=2.0
        ) as evaluator:
            merged = evaluator.reduce(evaluator.planner.plan_pairs())
            assert [failure[0] for failure in evaluator.failed_addresses] == [dead]
        inline = ShardedEvaluator(steane_engine, max_slab=64)
        baseline = inline.reduce(inline.planner.plan_pairs())
        assert merged.failures == baseline.failures
        assert merged.weighted_mass == baseline.weighted_mass

    def test_no_worker_reachable_raises(self, steane_engine):
        with pytest.raises(ClusterError, match="no cluster worker"):
            with ClusterEvaluator(
                steane_engine,
                [("127.0.0.1", _free_port())],
                connect_timeout=2.0,
            ) as evaluator:
                evaluator.reduce(evaluator.planner.plan_pairs())

    def test_close_with_live_map_drops_connections(
        self, steane_engine, spin_workers
    ):
        """close() while a map generator is still alive (the consumer
        broke out of the loop) must drop connections instead of racing
        the worker threads with bye frames — and a fresh session must
        come up afterwards."""
        addresses = spin_workers(2)
        evaluator = ClusterEvaluator(steane_engine, addresses, max_slab=8)
        stream = evaluator.map(
            evaluator.planner.plan_rows(checkable_only=True)
        )
        assert next(stream).trials == 8
        evaluator.close()
        merged = evaluator.reduce(
            evaluator.planner.plan_rows(checkable_only=True)
        )
        assert merged.trials == evaluator.planner.num_rows(True)
        stream.close()
        evaluator.close()

    def test_early_abort_streams_and_reconnects(
        self, steane_engine, spin_workers
    ):
        """Consume only the head of a plan, then reuse the evaluator: the
        abandoned session is torn down and a fresh one comes up."""
        addresses = spin_workers(2)
        with ClusterEvaluator(
            steane_engine, addresses, max_slab=8
        ) as evaluator:
            stream = evaluator.map(
                evaluator.planner.plan_rows(checkable_only=True)
            )
            first = next(stream)
            assert first.index == 0
            assert first.trials == 8
            stream.close()
            merged = evaluator.reduce(
                evaluator.planner.plan_rows(checkable_only=True)
            )
        assert merged.trials == evaluator.planner.num_rows(True)


class TestConsumerParity:
    """Every routed consumer: two-worker localhost cluster == inline."""

    def test_subset_sampler_strata_and_enumerations(self, spin_workers):
        protocol = cached_protocol("steane")
        addresses = spin_workers(2)
        tallies = {}
        for backend in ("inline", "cluster"):
            executor = (
                ClusterExecutorFactory(tuple(addresses))
                if backend == "cluster"
                else None
            )
            with SubsetSampler.for_protocol(
                protocol,
                rng=np.random.default_rng(11),
                workers=1,
                max_slab=250,
                executor=executor,
            ) as sampler:
                sampler.enumerate_k1_exact()
                sampler.sample(1200, allocation="uniform")
                tallies[backend] = {
                    k: (stats.trials, stats.failures)
                    for k, stats in sampler.strata.items()
                }
        assert tallies["inline"] == tallies["cluster"]

    def test_concurrent_sessions_one_worker_set(self, spin_workers):
        """A second evaluator session must not deadlock behind an open
        first one on the same workers (``simulate --direct --cluster``:
        direct_mc runs inside the sampler's own open session)."""
        protocol = cached_protocol("steane")
        addresses = spin_workers(2)
        factory = ClusterExecutorFactory(tuple(addresses))
        with SubsetSampler.for_protocol(
            protocol,
            rng=np.random.default_rng(7),
            max_slab=200,
            executor=factory,
        ) as sampler:
            sampler.sample_stratum(1, 400)  # session 1 now holds links
            nested = direct_mc(
                sampler.engine,
                E1_1(p=0.02),
                800,
                rng=np.random.default_rng(3),
                max_slab=200,
                executor=factory,
            )
        inline = direct_mc(
            sampler.engine,
            E1_1(p=0.02),
            800,
            rng=np.random.default_rng(3),
            workers=1,
            max_slab=200,
        )
        assert nested.failures == inline.failures

    def test_direct_mc_parity(self, steane_engine, spin_workers):
        addresses = spin_workers(2)
        inline = direct_mc(
            steane_engine,
            E1_1(p=0.02),
            2000,
            rng=np.random.default_rng(3),
            workers=1,
            max_slab=300,
        )
        clustered = direct_mc(
            steane_engine,
            E1_1(p=0.02),
            2000,
            rng=np.random.default_rng(3),
            max_slab=300,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )
        assert inline.failures == clustered.failures

    def test_certificate_parity(self, spin_workers):
        from repro.core.ftcheck import check_fault_tolerance

        protocol = cached_protocol("steane")
        addresses = spin_workers(2)
        inline = check_fault_tolerance(protocol, max_slab=32)
        clustered = check_fault_tolerance(
            protocol,
            max_slab=32,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )
        assert inline == clustered == []

    def test_survey_parity(self, spin_workers):
        from repro.core.ftcheck import second_order_survey

        protocol = cached_protocol("steane")
        addresses = spin_workers(2)
        inline = second_order_survey(
            protocol, samples=400, rng=np.random.default_rng(5), max_slab=64
        )
        clustered = second_order_survey(
            protocol,
            samples=400,
            rng=np.random.default_rng(5),
            max_slab=64,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )
        assert inline == clustered

    def test_budget_parity_with_disconnect(self, spin_workers):
        """The acceptance drill: budgets bit-identical to inline even
        when one of the two workers is killed mid-enumeration."""
        from repro.core.analysis import two_fault_error_budget

        protocol = cached_protocol("steane")
        (survivor,) = spin_workers(1)
        (dying,) = spin_workers(1, max_chunks=3)
        baseline = two_fault_error_budget(protocol)
        clustered = two_fault_error_budget(
            protocol,
            max_slab=613,
            executor=ClusterExecutorFactory((dying, survivor)),
        )
        assert baseline == clustered

    def test_figure4_parity(self, spin_workers):
        from repro.experiments.figure4 import run_figure4

        protocol = cached_protocol("steane")  # warm the synthesis cache
        assert protocol is not None
        addresses = spin_workers(2)
        inline = run_figure4(["steane"], shots=400, workers=1, shard="intra")[0]
        clustered = run_figure4(
            ["steane"],
            shots=400,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )[0]
        assert inline.shots == clustered.shots
        assert [e.mean for e in inline.estimates] == [
            e.mean for e in clustered.estimates
        ]

    def test_table1_verify_ft_parity(self, spin_workers):
        from repro.experiments.table1 import run_table1

        protocol = cached_protocol("steane")
        assert protocol is not None
        addresses = spin_workers(2)
        rows = [("steane", "heuristic", "optimal")]
        inline = run_table1(rows, verify_ft=True)
        clustered = run_table1(
            rows,
            verify_ft=True,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )
        assert inline[0].ft_certified is True
        assert clustered[0].ft_certified is True


class TestEngineCacheReuse:
    """ISSUE-5 satellite: workers cache the compiled payload by digest."""

    def test_second_session_hits_the_cache(self, steane_engine, spin_workers):
        (address,) = spin_workers(1)
        first = ClusterEvaluator(steane_engine, [address], max_slab=256)
        base = first.reduce(first.planner.plan_stratum(2, 1500, 42))
        assert first._links[0].info["engine_cached"] is False
        first.close()

        second = ClusterEvaluator(steane_engine, [address], max_slab=256)
        again = second.reduce(second.planner.plan_stratum(2, 1500, 42))
        assert second._links[0].info["engine_cached"] is True
        second.close()
        assert (base.trials, base.failures) == (again.trials, again.failures)

    def test_digest_is_stable_across_coordinators(self, steane_engine):
        """Two evaluators over the same engine payload share one digest,
        so a worker serves both from one compiled engine."""
        a = ClusterEvaluator(steane_engine, [("127.0.0.1", 1)])
        b = ClusterEvaluator(steane_engine, [("127.0.0.1", 1)])
        assert a.payload_digest == b.payload_digest

    def test_mislabeled_payload_rejected_not_cached(
        self, steane_engine, spin_workers
    ):
        """The worker re-hashes the payload bytes before caching: a
        payload that does not hash to the advertised digest is refused,
        so a buggy coordinator cannot poison the digest's cache slot."""
        import pickle

        import repro.sim.cluster as cluster_module

        (address,) = spin_workers(1)
        payload_bytes = pickle.dumps(engine_payload(steane_engine))
        header = {"digest": "0" * 64, "max_slab": 64, "model": None}
        sock = socket.create_connection(address, timeout=5)
        try:
            send_frame(
                sock,
                ("hello", cluster_module._MAGIC, PROTOCOL_VERSION, header),
            )
            kind, _ = recv_frame(sock)
            assert kind == "need-payload"
            send_frame(sock, ("payload", payload_bytes))
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply[0] == "reject"
        assert "hash" in reply[1]
        # The bogus digest must not have been cached: a well-formed
        # session against the same worker still starts from a cache miss.
        evaluator = ClusterEvaluator(steane_engine, [address], max_slab=64)
        evaluator._ensure_links()
        assert evaluator._links[0].info["engine_cached"] is False
        evaluator.close()

    def test_different_slab_same_engine_cache(self, steane_engine, spin_workers):
        """max_slab is per-session (planner state), not part of the
        engine digest — a re-sized session still hits the cache."""
        (address,) = spin_workers(1)
        first = ClusterEvaluator(steane_engine, [address], max_slab=128)
        first.reduce(first.planner.plan_stratum(1, 200, 7))
        first.close()
        second = ClusterEvaluator(steane_engine, [address], max_slab=4096)
        second.reduce(second.planner.plan_stratum(1, 200, 7))
        assert second._links[0].info["engine_cached"] is True
        second.close()


class TestHeterogeneousModelOnCluster:
    """Noise models travel in the handshake header: cluster runs of
    heterogeneous workloads are bit-identical to inline."""

    def test_biased_workloads_bit_identical(self, steane_engine, spin_workers):
        from repro.sim.noisemodels import BiasedPauliModel

        model = BiasedPauliModel(p=0.01, eta=100.0)
        addresses = spin_workers(2)
        with ShardedEvaluator(steane_engine, max_slab=512, model=model) as inline:
            stratum = inline.reduce(inline.planner.plan_stratum(2, 3000, 99))
            rows = inline.reduce(inline.planner.plan_rows(checkable_only=False))
            pairs = inline.reduce(inline.planner.plan_pairs())
        with ClusterEvaluator(
            steane_engine, addresses, max_slab=512, model=model
        ) as cluster:
            c_stratum = cluster.reduce(cluster.planner.plan_stratum(2, 3000, 99))
            c_rows = cluster.reduce(cluster.planner.plan_rows(checkable_only=False))
            c_pairs = cluster.reduce(cluster.planner.plan_pairs())
        assert (stratum.trials, stratum.failures) == (
            c_stratum.trials,
            c_stratum.failures,
        )
        assert rows.weighted_mass == c_rows.weighted_mass
        assert pairs.weighted_mass == c_pairs.weighted_mass
        assert np.array_equal(pairs.pair_ids, c_pairs.pair_ids)
        assert np.array_equal(pairs.pair_mass, c_pairs.pair_mass)

    def test_correlated_certificate_parity(self, spin_workers):
        from repro.core.ftcheck import check_fault_tolerance
        from repro.sim.cluster import ClusterExecutorFactory
        from repro.sim.noisemodels import CorrelatedPairModel

        protocol = cached_protocol("steane")
        model = CorrelatedPairModel(p=1e-3, pair_rate=5e-4)
        addresses = spin_workers(2)
        inline = check_fault_tolerance(protocol, model=model, max_violations=50)
        clustered = check_fault_tolerance(
            protocol,
            model=model,
            max_violations=50,
            executor=ClusterExecutorFactory(tuple(addresses)),
        )
        assert inline == clustered
        assert inline  # crosstalk events do defeat a d=3 protocol


class TestPipelinedFabric:
    """Protocol-3 credit window + compressed frames: scheduling and the
    wire codec may change throughput, never results."""

    def test_old_version_peer_rejected_cleanly(
        self, steane_engine, spin_workers
    ):
        """A protocol-2 coordinator gets a readable reject, not a hung
        socket or a codec-byte desync (handshake frames stayed raw for
        exactly this reason)."""
        import repro.sim.cluster as cluster_module

        (address,) = spin_workers(1)
        sock = socket.create_connection(address, timeout=5)
        try:
            send_frame(
                sock,
                ("hello", cluster_module._MAGIC, PROTOCOL_VERSION - 1, None),
            )
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply[0] == "reject"
        assert "version mismatch" in reply[1]

    def test_codec_negotiation_prefers_coordinator_order(self):
        from repro.sim.cluster import _negotiate_codec
        from repro.store import available_codecs

        ours = available_codecs()
        # The coordinator's preference list is walked in order; the
        # first mutually-speakable codec wins.
        assert _negotiate_codec(ours) == ours[0]
        assert _negotiate_codec(("none", "zlib")) == "none"
        # No overlap (or no list at all) falls back to raw frames.
        assert _negotiate_codec(("martian",)) == "none"
        assert _negotiate_codec(()) == "none"
        assert _negotiate_codec(None) == "none"

    def test_welcome_announces_codec_framer_uses_it(
        self, steane_engine, spin_workers
    ):
        from repro.store import available_codecs

        (address,) = spin_workers(1)
        with ClusterEvaluator(
            steane_engine, [address], max_slab=64
        ) as evaluator:
            (link,) = evaluator._ensure_links()
            assert link.info["codec"] == available_codecs()[0]
            assert link.framer.codec == link.info["codec"]

    def test_multi_chunk_in_flight_requeue_bit_identical(
        self, steane_engine, spin_workers
    ):
        """The acceptance drill: a worker killed with a *window* of
        unacknowledged chunks in flight (depth 6, dies after 2) must
        have the entire window requeued — nothing lost, nothing
        double-counted."""
        (survivor,) = spin_workers(1)
        (dying,) = spin_workers(1, max_chunks=2)
        inline = ShardedEvaluator(steane_engine, max_slab=8)
        baseline = inline.reduce(
            inline.planner.plan_rows(checkable_only=True, threshold=1)
        )
        with ClusterEvaluator(
            steane_engine, [dying, survivor], max_slab=8, pipeline_depth=6
        ) as evaluator:
            assert evaluator.pipeline_depth == 6
            merged = evaluator.reduce(
                evaluator.planner.plan_rows(checkable_only=True, threshold=1)
            )
        assert merged.trials == baseline.trials
        assert merged.heavy == baseline.heavy
        np.testing.assert_array_equal(merged.rows, baseline.rows)
        np.testing.assert_array_equal(merged.x_hist, baseline.x_hist)
        np.testing.assert_array_equal(merged.z_hist, baseline.z_hist)

    def test_depth_one_degenerates_to_lockstep(
        self, steane_engine, spin_workers
    ):
        """pipeline_depth=1 is the old ack-per-chunk protocol: at most
        one outstanding chunk, same merged results."""
        addresses = spin_workers(2)
        inline = ShardedEvaluator(steane_engine, max_slab=16)
        baseline = inline.reduce(inline.planner.plan_stratum(2, 1500, 42))
        with ClusterEvaluator(
            steane_engine, addresses, max_slab=16, pipeline_depth=1
        ) as evaluator:
            merged = evaluator.reduce(
                evaluator.planner.plan_stratum(2, 1500, 42)
            )
            assert evaluator.wire_stats()["pipeline_depth"] == 1
        assert (merged.trials, merged.failures) == (
            baseline.trials,
            baseline.failures,
        )

    def test_depth_resolution_and_clamping(self, steane_engine):
        addresses = [("127.0.0.1", 1)]
        assert (
            ClusterEvaluator(steane_engine, addresses).pipeline_depth == 4
        )
        assert (
            ClusterEvaluator(
                steane_engine, addresses, pipeline_depth=1000
            ).pipeline_depth
            == 32
        )
        assert (
            ClusterEvaluator(
                steane_engine, addresses, pipeline_depth=0
            ).pipeline_depth
            == 1
        )
        # mem_budget sizes the window so depth x slab footprint fits.
        budget = 1 << 22
        sized = ClusterEvaluator(
            steane_engine, addresses, mem_budget=budget
        )
        policy = AdaptiveSlabPolicy(budget)
        assert sized.pipeline_depth == policy.pipeline_depth_for(
            steane_engine, sized.max_slab
        )

    def test_pipeline_depth_for_fits_budget(self, steane_engine):
        policy = AdaptiveSlabPolicy(mem_budget=1 << 24)
        slab = policy.slab_for(steane_engine)
        depth = policy.pipeline_depth_for(steane_engine, slab)
        per_config = policy.bytes_per_config(steane_engine)
        assert 2 <= depth <= 32
        # The floor is 2 (a window of 1 is lockstep, allowed only by
        # explicit request); above the floor the window fits the budget.
        if depth > 2:
            assert depth * slab * per_config <= policy.mem_budget

    def test_executor_factory_forwards_depth(self, steane_engine):
        explicit = ClusterExecutorFactory(
            (("127.0.0.1", 1),), pipeline_depth=7
        )
        assert explicit(steane_engine, 64).pipeline_depth == 7
        budget = 1 << 22
        derived = ClusterExecutorFactory(
            (("127.0.0.1", 1),), mem_budget=budget
        )
        expected = AdaptiveSlabPolicy(budget).pipeline_depth_for(
            steane_engine, 64
        )
        assert derived(steane_engine, 64).pipeline_depth == expected

    def test_wire_stats_counts_and_survives_close(
        self, steane_engine, spin_workers
    ):
        from repro.store import available_codecs

        (address,) = spin_workers(1)
        evaluator = ClusterEvaluator(steane_engine, [address], max_slab=64)
        merged = evaluator.reduce(evaluator.planner.plan_stratum(1, 500, 9))
        assert merged.trials == 500
        live = evaluator.wire_stats()
        assert live["frames_sent"] > 0
        assert live["frames_received"] > 0
        assert live["raw_sent"] > 0 and live["wire_sent"] > 0
        assert live["compression_ratio"] > 0
        assert live["codec"] == available_codecs()[0]
        evaluator.close()
        # Retired-link counters are absorbed, not dropped, at close()
        # (the bye frame itself is one more sent frame).
        closed = evaluator.wire_stats()
        assert closed["frames_sent"] >= live["frames_sent"]
        assert closed["raw_received"] >= live["raw_received"]

    def test_framer_round_trip_and_counters(self):
        from repro.sim.cluster import _Framer
        from repro.store import preferred_codec

        left, right = socket.socketpair()
        sender = _Framer(left, preferred_codec())
        receiver = _Framer(right, preferred_codec())
        try:
            compressible = ("chunk", {"rows": list(range(2000))})
            sender.send(compressible)
            assert receiver.recv() == compressible
            # 2000 small ints pickle highly redundantly: the codec must
            # have shrunk the wire below the raw pickle size.
            assert sender.wire_sent < sender.raw_sent
            assert receiver.raw_received == sender.raw_sent
            # An incompressible payload ships raw under the "none" tag
            # instead of inflating the wire (9 bytes framing overhead).
            import os as _os

            noise = ("blob", _os.urandom(1 << 14))
            sender.send(noise)
            kind, blob = receiver.recv()
            assert kind == "blob" and blob == noise[1]
            assert receiver.frames_received == 2
        finally:
            left.close()
            right.close()

    def test_framer_rejects_unknown_codec(self):
        from repro.sim.cluster import _Framer

        left, right = socket.socketpair()
        try:
            with pytest.raises(ClusterProtocolError, match="unknown frame codec"):
                _Framer(left, "martian")
            # An unknown codec id on the wire is a protocol error, not
            # a silent mis-decode.
            framer = _Framer(right, "none")
            import struct as _struct

            left.sendall(_struct.pack(">Q", 2) + bytes((250, 0)))
            with pytest.raises(ClusterProtocolError, match="codec id"):
                framer.recv()
        finally:
            left.close()
            right.close()


def _free_port() -> int:
    """A port that was just free (nothing listens on it afterwards)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port
