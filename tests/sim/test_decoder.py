"""Unit tests for the lookup-table decoder (perfect EC round)."""

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code
from repro.sim.decoder import LookupDecoder


class TestSteaneDecoder:
    def setup_method(self):
        self.code = steane_code()
        self.decoder = LookupDecoder(self.code.hz)

    def test_zero_syndrome_zero_correction(self):
        zero = np.zeros(3, dtype=np.uint8)
        assert not self.decoder.decode(zero).any()

    def test_single_errors_decoded_exactly(self):
        """d=3: every single-qubit error is corrected perfectly."""
        for q in range(7):
            error = np.zeros(7, dtype=np.uint8)
            error[q] = 1
            residual = self.decoder.correct(error)
            assert not residual.any()

    def test_syndrome_computation(self):
        error = np.zeros(7, dtype=np.uint8)
        error[0] = 1
        syndrome = self.decoder.syndrome(error)
        assert (syndrome == self.code.hz @ error % 2).all()

    def test_all_syndromes_decodable(self):
        for value in range(8):
            syndrome = np.array(
                [(value >> j) & 1 for j in range(3)], dtype=np.uint8
            )
            correction = self.decoder.decode(syndrome)
            assert (self.decoder.syndrome(correction) == syndrome).all()

    def test_decoded_errors_minimum_weight(self):
        """Lookup entries are min-weight representatives per syndrome."""
        for value in range(1, 8):
            syndrome = np.array(
                [(value >> j) & 1 for j in range(3)], dtype=np.uint8
            )
            entry = self.decoder.decode(syndrome)
            weight = int(entry.sum())
            # Brute force the true minimum.
            best = 7
            for pattern in range(1, 2**7):
                vec = np.array(
                    [(pattern >> j) & 1 for j in range(7)], dtype=np.uint8
                )
                if (self.decoder.syndrome(vec) == syndrome).all():
                    best = min(best, int(vec.sum()))
            assert weight == best

    def test_correct_returns_residual_in_kernel(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            error = rng.integers(0, 2, size=7, dtype=np.uint8)
            residual = self.decoder.correct(error)
            assert not (self.code.hz @ residual % 2).any()

    def test_weight_two_error_misdecodes_to_logical(self):
        """d=3 lookup decoding: some weight-2 error must leave a logical
        residual — this is exactly why two faults cause logical errors."""
        hit_logical = False
        for q1 in range(7):
            for q2 in range(q1 + 1, 7):
                error = np.zeros(7, dtype=np.uint8)
                error[[q1, q2]] = 1
                residual = self.decoder.correct(error)
                if (self.code.logical_z @ residual % 2).any():
                    hit_logical = True
        assert hit_logical


class TestGeneralDecoders:
    @pytest.mark.parametrize("key", ["shor", "surface_3", "carbon"])
    def test_single_error_correction(self, key):
        code = get_code(key)
        decoder = LookupDecoder(code.hz)
        logical = code.logical_z
        for q in range(code.n):
            error = np.zeros(code.n, dtype=np.uint8)
            error[q] = 1
            residual = decoder.correct(error)
            # Residual must be stabilizer-or-identity (no logical part):
            assert not (logical @ residual % 2).any()

    def test_shapes(self):
        code = steane_code()
        decoder = LookupDecoder(code.hz)
        assert decoder.m == 3
        assert decoder.n == 7

    def test_unreachable_syndrome_raises(self):
        # Checks with a dependent row: syndrome (1,1) unreachable when both
        # rows are identical.
        decoder = LookupDecoder([[1, 1, 0], [1, 1, 0]])
        with pytest.raises(ValueError):
            decoder.decode(np.array([1, 0], dtype=np.uint8))
