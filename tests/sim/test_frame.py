"""Unit tests for the Pauli-frame protocol runner."""

import numpy as np
import pytest

from repro.sim.frame import Injection, ProtocolRunner, protocol_locations

from ..conftest import cached_protocol


class TestLocations:
    def test_includes_branches(self, steane_protocol):
        locations = protocol_locations(steane_protocol)
        keys = {loc[0][0][0] for loc in locations}
        assert keys == {"prep", "verif", "branch"}

    def test_kinds_valid(self, steane_protocol):
        kinds = {kind for _, kind, _ in protocol_locations(steane_protocol)}
        assert kinds <= {"1q", "2q", "reset_z", "reset_x", "meas"}

    def test_location_keys_unique(self, carbon_protocol):
        locations = protocol_locations(carbon_protocol)
        keys = [loc[0] for loc in locations]
        assert len(keys) == len(set(keys))

    def test_counts_match_segments(self, steane_protocol):
        proto = steane_protocol
        locations = protocol_locations(proto)
        prep_locations = [l for l in locations if l[0][0] == ("prep",)]
        segment = proto.prep_segment
        expected = (
            segment.count("H")
            + segment.count("CX")
            + segment.count("ResetZ")
            + segment.count("ResetX")
            + segment.count("MeasureZ")
            + segment.count("MeasureX")
        )
        assert len(prep_locations) == expected


class TestCleanRun:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    def test_fault_free_run_silent(self, key):
        runner = ProtocolRunner(cached_protocol(key))
        result = runner.run()
        assert not result.data_x.any()
        assert not result.data_z.any()
        assert not any(result.flips.values())
        assert result.branches_taken == []
        assert not result.terminated_early


class TestInjectedRuns:
    def test_verification_triggers_branch(self, steane_protocol):
        runner = ProtocolRunner(steane_protocol)
        # X fault on a data qubit inside the verification measurement's
        # support flips the measurement and takes the branch.
        layer = steane_protocol.layers[0]
        support_qubit = int(np.nonzero(layer.measurements[0].support)[0][0])
        injection = {
            (("prep",), 0): Injection(paulis=((support_qubit, "X"),))
        }
        result = runner.run(injection)
        if any(result.flips.get(b, 0) for b in layer.bits):
            assert result.branches_taken

    def test_measurement_flip_injection(self, steane_protocol):
        runner = ProtocolRunner(steane_protocol)
        layer = steane_protocol.layers[0]
        # Find the verification MeasureZ location.
        meas_index = next(
            i
            for i, ins in enumerate(layer.circuit.instructions)
            if ins.kind in ("MeasureZ", "MeasureX")
        )
        result = runner.run(
            {(("verif", 0), meas_index): Injection(flip=True)}
        )
        assert any(result.flips.values())
        assert result.branches_taken  # branch executes on the fake syndrome

    def test_recovery_applied(self, steane_protocol):
        """After a dangerous propagated error, the executed branch must
        reduce the residual to weight <= 1 (spot check of the FT property)."""
        from repro.core.errors import error_reducer

        runner = ProtocolRunner(steane_protocol)
        reducer = error_reducer(steane_protocol.code, "X")
        # Inject X on the control of the last prep CX (paper Example 3).
        prep_segment = steane_protocol.prep_segment
        last_cx = max(
            i for i, ins in enumerate(prep_segment.instructions)
            if ins.kind == "CX"
        )
        control = prep_segment.instructions[last_cx].control
        result = runner.run(
            {(("prep",), last_cx): Injection(paulis=((control, "X"),))}
        )
        assert reducer.coset_weight(result.data_x) <= 1

    def test_unreachable_signature_no_branch(self, carbon_protocol):
        """A multi-fault syndrome outside the branch table is skipped."""
        runner = ProtocolRunner(carbon_protocol)
        layer = carbon_protocol.layers[0]
        # Flip every verification measurement simultaneously.
        injections = {}
        for index, ins in enumerate(layer.circuit.instructions):
            if ins.kind in ("MeasureZ", "MeasureX"):
                injections[(("verif", 0), index)] = Injection(flip=True)
        result = runner.run(injections)  # must not raise
        assert isinstance(result.flips, dict)

    def test_early_termination_on_hook(self):
        """A protocol with a flagged measurement terminates on its flag."""
        for key in ("carbon", "16_2_4", "steane", "shor", "surface_3"):
            protocol = cached_protocol(key)
            flagged_layers = [
                (li, layer)
                for li, layer in enumerate(protocol.layers)
                if layer.num_flags
            ]
            if not flagged_layers:
                continue
            li, layer = flagged_layers[0]
            runner = ProtocolRunner(protocol)
            flag_meas = next(
                i
                for i, ins in enumerate(layer.circuit.instructions)
                if ins.kind in ("MeasureZ", "MeasureX")
                and ins.bit in layer.flag_bits
            )
            result = runner.run(
                {(("verif", li), flag_meas): Injection(flip=True)}
            )
            signature = next(
                (b, f)
                for (b, f) in layer.branches
                if any(f)
            )
            # Flag alone triggered: the run must take a hook branch and stop.
            if result.branches_taken:
                assert result.terminated_early
                return
        pytest.skip("no flagged protocol produced a pure-flag signature")

    def test_injection_after_instruction_semantics(self, steane_protocol):
        """A Pauli injected after a reset survives (fault model semantics)."""
        runner = ProtocolRunner(steane_protocol)
        result = runner.run(
            {(("prep",), 0): Injection(paulis=((0, "X"),))}
        )
        # The X was inserted after reset of qubit 0; some observable effect
        # must exist (error or flip) since the state is no longer |0>_L.
        touched = (
            result.data_x.any()
            or result.data_z.any()
            or any(result.flips.values())
        )
        assert touched


class TestRunResult:
    def test_signature_of(self, steane_protocol):
        runner = ProtocolRunner(steane_protocol)
        result = runner.run()
        bits = steane_protocol.layers[0].bits
        assert result.signature_of(bits) == (0,) * len(bits)
