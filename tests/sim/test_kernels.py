"""Tests for the raw-speed kernel tier (``repro.sim.kernels`` +
``engine="kernel"``).

The tier's whole contract is *bit-identity at higher speed*: the kernels
(numba-compiled when importable, pure-NumPy twins otherwise) must
reproduce the batched engine exactly — on the primitive level (packing,
segment application, popcount reduction, mask scatter), on the engine
level (verdicts, residual weights, full runs), and through every routed
consumer (subset sampler, ftcheck, budgets, direct MC). ``engine="auto"``
must resolve without error on any interpreter.
"""

import pickle

import numpy as np
import pytest

from repro.sim import kernels
from repro.sim.kernels import (
    apply_segment,
    coset_weights,
    pack_rows,
    scatter_masks,
)
from repro.sim.noise import E1_1, sample_injections_stratum
from repro.sim.sampler import (
    BatchedSampler,
    KernelSampler,
    make_sampler,
    resolve_engine_name,
)
from repro.sim.subset import SubsetSampler, direct_mc

from ..conftest import cached_protocol

CROSS_CODES = ["steane", "shor", "surface_3", "carbon"]


def _stratum(engine, k, shots, seed):
    return sample_injections_stratum(
        engine.locations, k, shots, np.random.default_rng(seed)
    )


class TestKernelPrimitives:
    """The dispatched kernels against independent Python oracles.

    On a numba-free interpreter this pins the NumPy twins; on the CI
    ``repro[fast]`` leg the same tests gate the njit kernels — the
    oracles are written from scratch, not in terms of either twin.
    """

    def test_pack_rows_round_trip(self):
        rng = np.random.default_rng(3)
        mat = rng.integers(0, 2, size=(7, 131), dtype=np.uint8)
        packed = pack_rows(mat)
        assert packed.dtype == np.uint64
        assert packed.shape == (7, (131 + 63) // 64)
        # Bit order within a word is an internal convention; what the
        # popcount pipeline relies on is an exact bits round-trip and
        # zero padding. Undo the packing through the byte view.
        as_bytes = np.ascontiguousarray(packed).view(np.uint8)
        unpacked = np.unpackbits(as_bytes, axis=1)
        np.testing.assert_array_equal(unpacked[:, :131], mat)
        assert not unpacked[:, 131:].any()

    def test_coset_weights_matches_min_weight_oracle(self):
        rng = np.random.default_rng(5)
        mat = rng.integers(0, 2, size=(40, 70), dtype=np.uint8)
        # Duplicated rows exercise the dedup/scatter path.
        mat[17] = mat[3]
        mat[29] = mat[3]
        span = rng.integers(0, 2, size=(8, 70), dtype=np.uint8)
        weights = coset_weights(mat, span)
        expected = ((mat[:, None, :] ^ span[None, :, :]).sum(axis=2)).min(
            axis=1
        )
        np.testing.assert_array_equal(weights, expected)
        assert weights[17] == weights[3] == weights[29]

    def test_coset_weights_empty(self):
        span = np.zeros((1, 16), dtype=np.uint8)
        assert coset_weights(np.zeros((0, 16), dtype=np.uint8), span).size == 0

    def test_apply_segment_matches_xor_oracle(self):
        rng = np.random.default_rng(9)
        frame, components, words, faults = 13, 21, 3, 5
        row_lists = [
            np.sort(
                rng.choice(frame, size=int(rng.integers(0, 5)), replace=False)
            ).astype(np.int64)
            for _ in range(components)
        ]
        counts = np.asarray([rows.size for rows in row_lists], dtype=np.int64)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        indices = np.concatenate(row_lists).astype(np.int64)
        incoming = rng.integers(
            0, 2**63, size=(frame, words), dtype=np.uint64
        )
        fault_nnz = 9
        fault_rows = rng.integers(0, faults, size=fault_nnz, dtype=np.int64)
        fault_cols = rng.integers(
            0, components, size=fault_nnz, dtype=np.int64
        )
        fault_masks = rng.integers(
            0, 2**63, size=(faults, words), dtype=np.uint64
        )
        mask = rng.integers(0, 2**63, size=words, dtype=np.uint64)

        out = np.zeros((components, words), dtype=np.uint64)
        apply_segment(
            incoming, indptr, indices, frame, fault_rows, fault_cols,
            fault_masks, mask, out,
        )

        expected = np.zeros_like(out)
        for component, rows in enumerate(row_lists):
            for row in rows:
                expected[component] ^= incoming[row]
        for entry in range(fault_nnz):
            expected[fault_cols[entry]] ^= fault_masks[fault_rows[entry]] & mask
        expected[:frame] &= mask
        expected[:frame] |= incoming[:frame] & ~mask
        expected[frame:] &= mask
        np.testing.assert_array_equal(out, expected)

    def test_scatter_masks_matches_or_oracle(self):
        rng = np.random.default_rng(13)
        groups, words, entries = 11, 8, 180
        group_of = rng.integers(0, groups, size=entries).astype(np.intp)
        shot_words = rng.integers(0, words, size=entries).astype(np.intp)
        shot_bits = (
            np.uint64(1) << rng.integers(0, 64, size=entries).astype(np.uint64)
        )
        masks = np.zeros((groups, words), dtype=np.uint64)
        scatter_masks(masks, group_of, shot_words, shot_bits)
        expected = np.zeros_like(masks)
        for entry in range(entries):
            expected[group_of[entry], shot_words[entry]] |= shot_bits[entry]
        np.testing.assert_array_equal(masks, expected)

    def test_backend_name_consistent_with_available(self):
        assert kernels.backend_name() == (
            "numba" if kernels.available() else "numpy"
        )


class TestEngineBitIdentity:
    """KernelSampler vs BatchedSampler: identical bits everywhere."""

    @pytest.mark.parametrize("key", CROSS_CODES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_indexed_verdicts_identical(self, key, k):
        protocol = cached_protocol(key)
        batched = make_sampler(protocol, engine="batched", store=False)
        kernel = make_sampler(protocol, engine="kernel", store=False)
        loc_idx, draw_idx = _stratum(batched, k, 400, hash((key, k)) % 2**32)
        np.testing.assert_array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            kernel.failures_indexed(loc_idx, draw_idx),
        )

    @pytest.mark.parametrize("key", ["steane", "surface_3", "carbon"])
    def test_residual_weights_identical(self, key):
        protocol = cached_protocol(key)
        code = protocol.code
        x_reducer = code.x_error_reducer()
        z_reducer = code.z_error_reducer()
        batched = make_sampler(protocol, engine="batched", store=False)
        kernel = make_sampler(protocol, engine="kernel", store=False)
        loc_idx, draw_idx = _stratum(batched, 2, 300, 17)
        got_b = batched.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
        got_k = kernel.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
        np.testing.assert_array_equal(got_b[0], got_k[0])
        np.testing.assert_array_equal(got_b[1], got_k[1])

    def test_full_run_identical(self):
        """run() (dict path, branch bookkeeping included) matches."""
        from repro.sim.noise import sample_injections

        protocol = cached_protocol("steane")
        batched = make_sampler(protocol, engine="batched", store=False)
        kernel = make_sampler(protocol, engine="kernel", store=False)
        rng = np.random.default_rng(23)
        dicts = [
            sample_injections(batched.locations, 0.05, rng)
            for _ in range(200)
        ]
        np.testing.assert_array_equal(
            batched.failures(dicts), kernel.failures(dicts)
        )
        run_b = batched.run(dicts)
        run_k = kernel.run(dicts)
        for shot in range(0, 200, 17):
            got_b, got_k = run_b.result(shot), run_k.result(shot)
            np.testing.assert_array_equal(got_b.data_x, got_k.data_x)
            np.testing.assert_array_equal(got_b.data_z, got_k.data_z)
            assert got_b.flips == got_k.flips
            assert got_b.branches_taken == got_k.branches_taken


class TestEngineRegistry:
    def test_auto_never_errors(self):
        """The headline auto contract: resolves on any interpreter."""
        resolved = resolve_engine_name("auto")
        assert resolved == ("kernel" if kernels.available() else "batched")
        sampler = make_sampler(
            cached_protocol("steane"), engine="auto", store=False
        )
        assert isinstance(sampler, BatchedSampler)

    def test_concrete_names_pass_through(self):
        assert resolve_engine_name("batched") == "batched"
        assert resolve_engine_name("kernel") == "kernel"
        assert resolve_engine_name("reference") == "reference"

    def test_kernel_engine_is_exact_type(self):
        sampler = make_sampler(
            cached_protocol("steane"), engine="kernel", store=False
        )
        assert type(sampler) is KernelSampler
        assert sampler.name == "kernel"
        assert sampler.backend in ("numba", "numpy")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_sampler(
                cached_protocol("steane"), engine="warp", store=False
            )

    def test_store_caches_kernel_separately_from_batched(self, tmp_path):
        """The two cached engines live under distinct keys, and the
        exact-type check means a batched hit never serves a kernel ask."""
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        protocol = cached_protocol("steane")
        batched = make_sampler(protocol, engine="batched", store=store)
        kernel = make_sampler(protocol, engine="kernel", store=store)
        assert type(batched) is BatchedSampler
        assert type(kernel) is KernelSampler
        again = make_sampler(protocol, engine="kernel", store=store)
        assert type(again) is KernelSampler

    def test_kernel_sampler_pickles_without_backend_state(self):
        """The backend is a property resolved per process — a pickled
        engine never freezes in the tier it was built under."""
        sampler = make_sampler(
            cached_protocol("steane"), engine="kernel", store=False
        )
        clone = pickle.loads(pickle.dumps(sampler))
        assert type(clone) is KernelSampler
        assert clone.backend == kernels.backend_name()
        loc_idx, draw_idx = _stratum(sampler, 2, 100, 3)
        np.testing.assert_array_equal(
            sampler.failures_indexed(loc_idx, draw_idx),
            clone.failures_indexed(loc_idx, draw_idx),
        )


class TestConsumerParity:
    """Every routed consumer, engine="kernel" vs engine="batched"."""

    def test_subset_sampler_tallies(self):
        protocol = cached_protocol("steane")
        tallies = {}
        for engine in ("batched", "kernel"):
            with SubsetSampler.for_protocol(
                protocol,
                engine=engine,
                rng=np.random.default_rng(29),
                workers=1,
                max_slab=200,
            ) as sampler:
                sampler.enumerate_k1_exact()
                sampler.sample(800, allocation="uniform")
                tallies[engine] = {
                    k: (stats.trials, stats.failures)
                    for k, stats in sampler.strata.items()
                }
        assert tallies["batched"] == tallies["kernel"]

    def test_ftcheck_certificate(self):
        from repro.core.ftcheck import check_fault_tolerance

        protocol = cached_protocol("steane")
        batched = check_fault_tolerance(
            protocol, engine="batched", store=False
        )
        kernel = check_fault_tolerance(protocol, engine="kernel", store=False)
        assert batched == kernel == []

    def test_two_fault_error_budget(self):
        from repro.core.analysis import two_fault_error_budget

        protocol = cached_protocol("steane")
        batched = two_fault_error_budget(
            protocol, engine="batched", store=False
        )
        kernel = two_fault_error_budget(protocol, engine="kernel", store=False)
        assert batched == kernel

    def test_direct_mc(self):
        protocol = cached_protocol("steane")
        estimates = {}
        for engine in ("batched", "kernel"):
            sampler = make_sampler(protocol, engine=engine, store=False)
            estimates[engine] = direct_mc(
                sampler,
                E1_1(p=0.02),
                1500,
                rng=np.random.default_rng(41),
                workers=1,
                max_slab=300,
            )
        assert (
            estimates["batched"].failures == estimates["kernel"].failures
        )
        assert estimates["batched"].trials == estimates["kernel"].trials
