"""Unit tests for logical-failure determination."""

import numpy as np
import pytest

from repro.codes.catalog import steane_code
from repro.sim.frame import RunResult
from repro.sim.logical import LogicalJudge

from ..conftest import cached_protocol


def result_with(data_x, n=7):
    return RunResult(
        data_x=np.asarray(data_x, dtype=np.uint8),
        data_z=np.zeros(n, dtype=np.uint8),
        flips={},
    )


class TestLogicalJudge:
    def setup_method(self):
        self.code = steane_code()
        self.judge = LogicalJudge(self.code)

    def test_clean_run_no_failure(self):
        assert not self.judge.is_logical_failure(result_with([0] * 7))

    def test_single_x_errors_never_fail(self):
        """Perfect EC corrects any weight-1 residual (d = 3)."""
        for q in range(7):
            error = [0] * 7
            error[q] = 1
            assert not self.judge.is_logical_failure(result_with(error))

    def test_logical_x_fails(self):
        assert self.judge.is_logical_failure(
            result_with(self.code.logical_x[0])
        )

    def test_stabilizer_never_fails(self):
        for row in self.code.hx:
            assert not self.judge.is_logical_failure(result_with(row))

    def test_z_residual_invisible(self):
        """Z errors cannot flip a Z-basis readout of a Z eigenstate."""
        result = RunResult(
            data_x=np.zeros(7, dtype=np.uint8),
            data_z=np.ones(7, dtype=np.uint8),
            flips={},
        )
        assert not self.judge.is_logical_failure(result)

    def test_some_weight_two_error_fails(self):
        failures = 0
        for q1 in range(7):
            for q2 in range(q1 + 1, 7):
                error = [0] * 7
                error[q1] = error[q2] = 1
                if self.judge.is_logical_failure(result_with(error)):
                    failures += 1
        assert failures > 0

    def test_logical_plus_stabilizer_still_fails(self):
        error = self.code.logical_x[0] ^ self.code.hx[0]
        assert self.judge.is_logical_failure(result_with(error))


class TestJudgeOnProtocols:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    def test_every_single_fault_judged_harmless(self, key):
        """End-to-end restatement of fault tolerance: protocol + perfect EC
        + destructive readout never fails under one fault."""
        from repro.core.ftcheck import enumerate_checkable_injections
        from repro.sim.frame import ProtocolRunner

        protocol = cached_protocol(key)
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        for location, injection in enumerate_checkable_injections(protocol):
            result = runner.run({location: injection})
            assert not judge.is_logical_failure(result), (
                f"single fault at {location} caused a logical failure"
            )
