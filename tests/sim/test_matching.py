"""Tests for the MWPM decoder, cross-validated against the lookup table."""

import itertools

import numpy as np
import pytest

from repro.codes.catalog import get_code, shor_code, surface_code_d3
from repro.sim.decoder import LookupDecoder
from repro.sim.matching import MatchingDecoder, is_matchable


class TestMatchability:
    def test_surface_code_matchable(self):
        code = surface_code_d3()
        assert is_matchable(code.hz)
        assert is_matchable(code.hx)

    def test_shor_z_checks_matchable(self):
        # Z checks are weight-2 pairs within blocks: a repetition code.
        code = shor_code()
        assert is_matchable(code.hz)

    def test_steane_not_matchable(self):
        code = get_code("steane")
        assert not is_matchable(code.hz)

    def test_unmatchable_rejected(self):
        with pytest.raises(ValueError):
            MatchingDecoder(get_code("steane").hz)


class TestSurfaceDecoding:
    def setup_method(self):
        self.code = surface_code_d3()
        self.matching = MatchingDecoder(self.code.hz)
        self.lookup = LookupDecoder(self.code.hz)

    def test_zero_syndrome(self):
        zero = np.zeros(self.code.hz.shape[0], dtype=np.uint8)
        assert not self.matching.decode(zero).any()

    def test_single_errors_corrected(self):
        for q in range(9):
            error = np.zeros(9, dtype=np.uint8)
            error[q] = 1
            residual = self.matching.correct(error)
            # Residual must be check-silent and non-logical.
            assert not (self.code.hz @ residual % 2).any()
            assert not (self.code.logical_z @ residual % 2).any()

    def test_decoded_weight_matches_lookup(self):
        """MWPM corrections are minimum weight — same weight as lookup."""
        for pattern in itertools.product((0, 1), repeat=4):
            syndrome = np.array(pattern, dtype=np.uint8)
            try:
                lookup_entry = self.lookup.decode(syndrome)
            except ValueError:
                continue
            matching_entry = self.matching.decode(syndrome)
            assert (self.matching.syndrome(matching_entry) == syndrome).all()
            assert int(matching_entry.sum()) == int(lookup_entry.sum())

    def test_random_errors_same_residual_weight(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            error = rng.integers(0, 2, size=9, dtype=np.uint8)
            a = self.matching.correct(error)
            b = self.lookup.correct(error)
            # Both residuals silent; logical content may differ only if the
            # corrections differ by a logical — on min-weight decoders of
            # the same weight class they agree up to stabilizers.
            assert not (self.code.hz @ a % 2).any()
            assert not (self.code.hz @ b % 2).any()

    def test_x_checks_decoder_too(self):
        decoder = MatchingDecoder(self.code.hx)
        for q in range(9):
            error = np.zeros(9, dtype=np.uint8)
            error[q] = 1
            residual = decoder.correct(error)
            assert not (self.code.hx @ residual % 2).any()
            assert not (self.code.logical_x @ residual % 2).any()


class TestRepetitionDecoding:
    def test_shor_bitflip_blocks(self):
        code = shor_code()
        decoder = MatchingDecoder(code.hz)
        for q in range(9):
            error = np.zeros(9, dtype=np.uint8)
            error[q] = 1
            residual = decoder.correct(error)
            assert not (code.hz @ residual % 2).any()
            assert not (code.logical_z @ residual % 2).any()

    def test_two_errors_in_different_blocks(self):
        code = shor_code()
        decoder = MatchingDecoder(code.hz)
        error = np.zeros(9, dtype=np.uint8)
        error[[0, 3]] = 1  # one per block
        residual = decoder.correct(error)
        assert not (code.hz @ residual % 2).any()
        # Each block corrects its own single error.
        assert not (code.logical_z @ residual % 2).any()


class TestProtocolIntegration:
    def test_surface_protocol_with_matching_ec(self):
        """Swap the perfect-EC decoder for MWPM: single faults still never
        produce logical failures."""
        from repro.core.ftcheck import enumerate_checkable_injections
        from repro.sim.frame import ProtocolRunner

        from ..conftest import cached_protocol

        protocol = cached_protocol("surface_3")
        code = protocol.code
        runner = ProtocolRunner(protocol)
        decoder = MatchingDecoder(code.hz)
        for location, injection in enumerate_checkable_injections(protocol):
            result = runner.run({location: injection})
            residual = decoder.correct(result.data_x)
            assert not (code.logical_z @ residual % 2).any()
