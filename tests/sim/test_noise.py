"""Unit tests for the E1_1 noise model and injection samplers."""

import numpy as np
import pytest

from repro.sim.frame import Injection, protocol_locations
from repro.sim.noise import (
    E1_1,
    fault_draws,
    sample_injections,
    sample_injections_fixed_k,
)

from ..conftest import cached_protocol


def locations_of(protocol):
    return protocol_locations(protocol)


class TestFaultDraws:
    def test_1q_draws(self):
        draws = fault_draws("1q", (3,))
        assert len(draws) == 3
        letters = {d.paulis[0][1] for d in draws}
        assert letters == {"X", "Y", "Z"}

    def test_2q_draws(self):
        draws = fault_draws("2q", (0, 1))
        assert len(draws) == 15
        # II must be absent; all draws non-empty.
        assert all(d.paulis for d in draws)

    def test_2q_single_sided_draws_present(self):
        draws = fault_draws("2q", (0, 1))
        sides = {tuple(sorted(w for w, _ in d.paulis)) for d in draws}
        assert (0,) in sides and (1,) in sides and (0, 1) in sides

    def test_reset_draws(self):
        assert fault_draws("reset_z", (2,)) == [
            Injection(paulis=((2, "X"),))
        ]
        assert fault_draws("reset_x", (2,)) == [
            Injection(paulis=((2, "Z"),))
        ]

    def test_meas_draw(self):
        assert fault_draws("meas", (1,)) == [Injection(flip=True)]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            fault_draws("3q", (0, 1, 2))


class TestSampling:
    def test_zero_rate_no_injections(self, steane_protocol):
        locations = locations_of(steane_protocol)
        injections = sample_injections(
            locations, 0.0, np.random.default_rng(0)
        )
        assert injections == {}

    def test_unit_rate_all_locations(self, steane_protocol):
        locations = locations_of(steane_protocol)
        injections = sample_injections(
            locations, 1.0, np.random.default_rng(0)
        )
        assert len(injections) == len(locations)

    def test_expected_count(self, steane_protocol):
        locations = locations_of(steane_protocol)
        rng = np.random.default_rng(1)
        p = 0.2
        counts = [
            len(sample_injections(locations, p, rng)) for _ in range(500)
        ]
        mean = np.mean(counts)
        assert abs(mean - p * len(locations)) < 0.5

    def test_keys_are_location_keys(self, steane_protocol):
        locations = locations_of(steane_protocol)
        injections = sample_injections(
            locations, 0.5, np.random.default_rng(2)
        )
        valid = {key for key, _, _ in locations}
        assert set(injections) <= valid


class TestFixedK:
    def test_exact_count(self, steane_protocol):
        locations = locations_of(steane_protocol)
        rng = np.random.default_rng(3)
        for k in (1, 2, 3, 5):
            injections = sample_injections_fixed_k(locations, k, rng)
            assert len(injections) == k

    def test_k_zero(self, steane_protocol):
        locations = locations_of(steane_protocol)
        assert (
            sample_injections_fixed_k(
                locations, 0, np.random.default_rng(0)
            )
            == {}
        )

    def test_too_many_faults_rejected(self, steane_protocol):
        locations = locations_of(steane_protocol)
        with pytest.raises(ValueError):
            sample_injections_fixed_k(
                locations, len(locations) + 1, np.random.default_rng(0)
            )

    def test_all_locations_eventually_hit(self, steane_protocol):
        locations = locations_of(steane_protocol)
        rng = np.random.default_rng(4)
        hit = set()
        for _ in range(2000):
            hit.update(sample_injections_fixed_k(locations, 1, rng))
        assert len(hit) == len(locations)


class TestModel:
    def test_uniform_probability(self):
        model = E1_1(p=0.01)
        for kind in ("1q", "2q", "reset_z", "meas"):
            assert model.probability(kind) == 0.01

    def test_frozen(self):
        model = E1_1(p=0.1)
        with pytest.raises(Exception):
            model.p = 0.2
