"""Tests for the scaled noise model and exact k=2 subset stratum."""

import numpy as np
import pytest

from repro.sim.frame import protocol_locations
from repro.sim.noise import E1_1, ScaledNoiseModel, sample_injections_model
from repro.sim.subset import SubsetSampler

from ..conftest import cached_protocol


class TestScaledModel:
    def test_defaults_match_e1_1(self):
        scaled = ScaledNoiseModel(p=0.01)
        uniform = E1_1(p=0.01)
        for kind in ("1q", "2q", "reset_z", "reset_x", "meas"):
            assert scaled.probability(kind) == uniform.probability(kind)

    def test_per_kind_scaling(self):
        model = ScaledNoiseModel(p=0.001, two_qubit=5.0, measurement=10.0)
        assert model.probability("2q") == pytest.approx(0.005)
        assert model.probability("meas") == pytest.approx(0.01)
        assert model.probability("1q") == pytest.approx(0.001)
        assert model.probability("reset_z") == pytest.approx(0.001)

    def test_rate_bounds_checked(self):
        model = ScaledNoiseModel(p=0.5, two_qubit=3.0)
        with pytest.raises(ValueError):
            model.probability("2q")

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            ScaledNoiseModel(p=0.01).probability("3q")


class TestSampleWithModel:
    def test_zero_rate(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.0)
        assert (
            sample_injections_model(
                locations, model, np.random.default_rng(0)
            )
            == {}
        )

    def test_kind_bias_observable(self):
        """With two_qubit=10x, 2q locations must fail far more often."""
        locations = protocol_locations(cached_protocol("steane"))
        kinds = {key: kind for key, kind, _ in locations}
        model = ScaledNoiseModel(p=0.005, two_qubit=10.0)
        rng = np.random.default_rng(1)
        counts = {"2q": 0, "other": 0}
        for _ in range(2000):
            for key in sample_injections_model(locations, model, rng):
                bucket = "2q" if kinds[key] == "2q" else "other"
                counts[bucket] += 1
        num_2q = sum(1 for k in kinds.values() if k == "2q")
        num_other = len(kinds) - num_2q
        rate_2q = counts["2q"] / num_2q
        rate_other = counts["other"] / max(num_other, 1)
        assert rate_2q > 5 * rate_other

    def test_matches_e1_1_statistics(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.1)
        rng = np.random.default_rng(2)
        counts = [
            len(sample_injections_model(locations, model, rng))
            for _ in range(500)
        ]
        assert abs(np.mean(counts) - 0.1 * len(locations)) < 0.4


class TestExactK2:
    def test_exact_matches_semantics(self):
        """Threshold-2 toy model: every pair fails, so f2 must be 1."""
        locations = [((("seg",), i), "meas", (0,)) for i in range(8)]
        sampler = SubsetSampler(
            lambda injections: len(injections) >= 2,
            locations,
            k_max=2,
            rng=np.random.default_rng(0),
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].exact
        assert sampler.strata[2].rate == pytest.approx(1.0)

    def test_partial_failure_weighting(self):
        """Fail only when both locations are even-indexed: f2 = C(4,2)/C(8,2)."""
        locations = [((("seg",), i), "meas", (0,)) for i in range(8)]

        def fn(injections):
            return all(key[1] % 2 == 0 for key in injections) and len(
                injections
            ) == 2

        sampler = SubsetSampler(
            fn, locations, k_max=2, rng=np.random.default_rng(0)
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].rate == pytest.approx(6 / 28, abs=1e-9)

    def test_requires_k_max_2(self):
        locations = [((("seg",), i), "meas", (0,)) for i in range(4)]
        sampler = SubsetSampler(
            lambda inj: False, locations, k_max=1,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            sampler.enumerate_k2_exact()

    def test_max_runs_guard(self):
        locations = [((("seg",), i), "2q", (0, 1)) for i in range(30)]
        sampler = SubsetSampler(
            lambda inj: False, locations, k_max=2,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            sampler.enumerate_k2_exact(max_runs=100)

    def test_steane_exact_c2_against_known_value(self):
        """Regression-pin the exact quadratic coefficient of the Steane
        protocol (independently computed by core.analysis)."""
        import math

        protocol = cached_protocol("steane")
        from repro.sim.frame import ProtocolRunner
        from repro.sim.logical import LogicalJudge

        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        locations = protocol_locations(protocol)
        sampler = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            locations,
            k_max=2,
            rng=np.random.default_rng(0),
        )
        sampler.enumerate_k2_exact()
        c2 = math.comb(len(locations), 2) * sampler.strata[2].rate
        assert c2 == pytest.approx(57.40, abs=0.05)
