"""Tests for the scaled noise model and exact k=2 subset stratum."""

import numpy as np
import pytest

from repro.sim.frame import protocol_locations
from repro.sim.noise import (
    E1_1,
    ScaledNoiseModel,
    draw_counts,
    materialize_stratum,
    sample_injections_model,
    sample_injections_model_batch,
)
from repro.sim.sampler import BatchedSampler, ReferenceSampler
from repro.sim.subset import SubsetSampler, direct_mc

from ..conftest import cached_protocol


class TestScaledModel:
    def test_defaults_match_e1_1(self):
        scaled = ScaledNoiseModel(p=0.01)
        uniform = E1_1(p=0.01)
        for kind in ("1q", "2q", "reset_z", "reset_x", "meas"):
            assert scaled.probability(kind) == uniform.probability(kind)

    def test_per_kind_scaling(self):
        model = ScaledNoiseModel(p=0.001, two_qubit=5.0, measurement=10.0)
        assert model.probability("2q") == pytest.approx(0.005)
        assert model.probability("meas") == pytest.approx(0.01)
        assert model.probability("1q") == pytest.approx(0.001)
        assert model.probability("reset_z") == pytest.approx(0.001)

    def test_rate_bounds_checked_at_construction(self):
        """Rates are validated once when the model is built, not per call."""
        with pytest.raises(ValueError):
            ScaledNoiseModel(p=0.5, two_qubit=3.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ScaledNoiseModel(p=0.01, measurement=-1.0)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            ScaledNoiseModel(p=0.01).probability("3q")

    def test_kind_rates_vectorized(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.002, two_qubit=5.0, measurement=10.0)
        rates = model.kind_rates(locations)
        assert rates.shape == (len(locations),)
        for rate, (_, kind, _) in zip(rates, locations):
            assert rate == pytest.approx(model.probability(kind))

    def test_e1_1_kind_rates(self):
        locations = protocol_locations(cached_protocol("steane"))
        rates = E1_1(p=0.03).kind_rates(locations)
        assert (rates == 0.03).all()


class TestSampleWithModel:
    def test_zero_rate(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.0)
        assert (
            sample_injections_model(
                locations, model, np.random.default_rng(0)
            )
            == {}
        )

    def test_kind_bias_observable(self):
        """With two_qubit=10x, 2q locations must fail far more often."""
        locations = protocol_locations(cached_protocol("steane"))
        kinds = {key: kind for key, kind, _ in locations}
        model = ScaledNoiseModel(p=0.005, two_qubit=10.0)
        rng = np.random.default_rng(1)
        counts = {"2q": 0, "other": 0}
        for _ in range(2000):
            for key in sample_injections_model(locations, model, rng):
                bucket = "2q" if kinds[key] == "2q" else "other"
                counts[bucket] += 1
        num_2q = sum(1 for k in kinds.values() if k == "2q")
        num_other = len(kinds) - num_2q
        rate_2q = counts["2q"] / num_2q
        rate_other = counts["other"] / max(num_other, 1)
        assert rate_2q > 5 * rate_other

    def test_matches_e1_1_statistics(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.1)
        rng = np.random.default_rng(2)
        counts = [
            len(sample_injections_model(locations, model, rng))
            for _ in range(500)
        ]
        assert abs(np.mean(counts) - 0.1 * len(locations)) < 0.4


class TestModelBatch:
    """The vectorized Bernoulli generator (direct-MC on the batch engine)."""

    def test_masked_arrays_well_formed(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = ScaledNoiseModel(p=0.08, two_qubit=2.0)
        loc_idx, draw_idx = sample_injections_model_batch(
            locations, model, 400, np.random.default_rng(0)
        )
        assert loc_idx.shape == draw_idx.shape
        assert loc_idx.shape[0] == 400
        counts = draw_counts(locations)
        filled = loc_idx >= 0
        assert filled.any()
        assert (draw_idx[filled] < counts[loc_idx[filled]]).all()
        assert (draw_idx[filled] >= 0).all()
        # Unused slots are masked with -1 and sit after the filled ones.
        per_shot = filled.sum(axis=1)
        assert loc_idx.shape[1] == per_shot.max()

    def test_zero_rate_gives_empty_batch(self):
        locations = protocol_locations(cached_protocol("steane"))
        loc_idx, draw_idx = sample_injections_model_batch(
            locations, ScaledNoiseModel(p=0.0), 50, np.random.default_rng(0)
        )
        assert loc_idx.shape == (50, 0)
        assert draw_idx.shape == (50, 0)

    def test_fault_count_statistics(self):
        locations = protocol_locations(cached_protocol("steane"))
        model = E1_1(p=0.1)
        loc_idx, _ = sample_injections_model_batch(
            locations, model, 4000, np.random.default_rng(3)
        )
        mean_faults = (loc_idx >= 0).sum(axis=1).mean()
        assert abs(mean_faults - 0.1 * len(locations)) < 0.15

    def test_kind_bias_observable(self):
        locations = protocol_locations(cached_protocol("steane"))
        kinds = [kind for _, kind, _ in locations]
        model = ScaledNoiseModel(p=0.004, two_qubit=10.0)
        loc_idx, _ = sample_injections_model_batch(
            locations, model, 4000, np.random.default_rng(4)
        )
        hits = loc_idx[loc_idx >= 0]
        two_qubit_hits = sum(1 for l in hits if kinds[l] == "2q")
        num_2q = sum(1 for k in kinds if k == "2q")
        rate_2q = two_qubit_hits / num_2q
        rate_other = (hits.size - two_qubit_hits) / (len(kinds) - num_2q)
        assert rate_2q > 5 * rate_other

    def test_engines_agree_on_same_batch(self):
        """Variable-weight masked batches run identically on both engines."""
        protocol = cached_protocol("steane")
        batched = BatchedSampler(protocol)
        reference = ReferenceSampler(protocol)
        loc_idx, draw_idx = sample_injections_model_batch(
            batched.locations,
            E1_1(p=0.08),
            300,
            np.random.default_rng(5),
        )
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )

    def test_masked_indexed_equals_dict_path(self):
        protocol = cached_protocol("steane")
        batched = BatchedSampler(protocol)
        loc_idx, draw_idx = sample_injections_model_batch(
            batched.locations,
            E1_1(p=0.1),
            200,
            np.random.default_rng(6),
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            batched.failures(dicts),
        )

    def test_direct_mc_consistent_with_exact_strata(self):
        """Direct MC at fixed p must agree with the subset decomposition
        (exact k=1 + exact k=2 dominate p_L at small p) within 5 sigma."""
        protocol = cached_protocol("steane")
        p = 0.02
        sampler = SubsetSampler.for_protocol(
            protocol, k_max=2, rng=np.random.default_rng(7)
        )
        sampler.enumerate_k1_exact()
        sampler.enumerate_k2_exact()
        expected = sampler.estimate(p)
        estimate = direct_mc(
            sampler.engine,
            E1_1(p=p),
            6000,
            rng=np.random.default_rng(8),
        )
        sigma = max(
            np.sqrt(expected.mean * (1 - expected.mean) / estimate.trials),
            1.0 / estimate.trials,
        )
        assert abs(estimate.rate - expected.mean) < 5 * sigma + expected.tail

    def test_direct_mc_engines_agree(self):
        protocol = cached_protocol("steane")
        results = []
        for engine_cls in (BatchedSampler, ReferenceSampler):
            estimate = direct_mc(
                engine_cls(protocol),
                E1_1(p=0.05),
                400,
                rng=np.random.default_rng(9),
            )
            results.append((estimate.trials, estimate.failures))
        assert results[0] == results[1]


class TestExactK2:
    def test_exact_matches_semantics(self):
        """Threshold-2 toy model: every pair fails, so f2 must be 1."""
        locations = [((("seg",), i), "meas", (0,)) for i in range(8)]
        sampler = SubsetSampler(
            lambda injections: len(injections) >= 2,
            locations,
            k_max=2,
            rng=np.random.default_rng(0),
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].exact
        assert sampler.strata[2].rate == pytest.approx(1.0)

    def test_partial_failure_weighting(self):
        """Fail only when both locations are even-indexed: f2 = C(4,2)/C(8,2)."""
        locations = [((("seg",), i), "meas", (0,)) for i in range(8)]

        def fn(injections):
            return all(key[1] % 2 == 0 for key in injections) and len(
                injections
            ) == 2

        sampler = SubsetSampler(
            fn, locations, k_max=2, rng=np.random.default_rng(0)
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].rate == pytest.approx(6 / 28, abs=1e-9)

    def test_requires_k_max_2(self):
        locations = [((("seg",), i), "meas", (0,)) for i in range(4)]
        sampler = SubsetSampler(
            lambda inj: False, locations, k_max=1,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            sampler.enumerate_k2_exact()

    def test_max_runs_guard(self):
        locations = [((("seg",), i), "2q", (0, 1)) for i in range(30)]
        sampler = SubsetSampler(
            lambda inj: False, locations, k_max=2,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            sampler.enumerate_k2_exact(max_runs=100)

    def test_steane_exact_c2_against_known_value(self):
        """Regression-pin the exact quadratic coefficient of the Steane
        protocol (independently computed by core.analysis)."""
        import math

        protocol = cached_protocol("steane")
        from repro.sim.frame import ProtocolRunner
        from repro.sim.logical import LogicalJudge

        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        locations = protocol_locations(protocol)
        sampler = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            locations,
            k_max=2,
            rng=np.random.default_rng(0),
        )
        sampler.enumerate_k2_exact()
        c2 = math.comb(len(locations), 2) * sampler.strata[2].rate
        assert c2 == pytest.approx(57.40, abs=0.05)
