"""Unit tests for the heterogeneous noise subsystem (repro.sim.noisemodels).

Covers the model zoo, the compiled :class:`SiteUniverse` math — conditional
Bernoulli stratum sampling, Poisson-binomial weights, exact enumeration
weights, pair-site expansion — and the ``--noise`` spec grammar. The
property tests compare everything against brute-force enumeration at small
``n``, which is the ISSUE-5 acceptance harness for the weight math.
"""

import itertools
import math
import pickle

import numpy as np
import pytest

from repro.core.faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from repro.sim.frame import Injection, protocol_locations
from repro.sim.noise import (
    E1_1,
    ScaledNoiseModel,
    compose_injections,
    draw_counts,
    merge_injection_dicts,
    sample_injections_model_batch,
)
from repro.sim.noisemodels import (
    BiasedPauliModel,
    CorrelatedPairModel,
    InhomogeneousModel,
    SiteUniverse,
    adjacent_2q_pairs,
    parse_noise_spec,
    site_universe,
)
from repro.sim.subset import (
    binomial_weight,
    poisson_binomial_tail,
    poisson_binomial_weight,
    poisson_binomial_weights,
)

from ..conftest import cached_protocol


def toy_locations(kinds=("1q", "2q", "meas", "reset_z", "2q", "1q", "reset_x")):
    return [
        ((("seg",), i), kind, (0, 1) if kind == "2q" else (0,))
        for i, kind in enumerate(kinds)
    ]


class TestPoissonBinomial:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_enumeration(self, seed):
        """Property test: the DP head equals the explicit sum over all
        k-subsets of heterogeneous Bernoulli rates, at every k."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        rates = rng.random(n) * 0.5
        head = poisson_binomial_weights(rates, n)
        for k in range(n + 1):
            brute = 0.0
            for subset in itertools.combinations(range(n), k):
                term = 1.0
                for i in range(n):
                    term *= rates[i] if i in subset else 1.0 - rates[i]
                brute += term
            assert head[k] == pytest.approx(brute, rel=1e-12, abs=1e-15)
        assert head.sum() == pytest.approx(1.0)

    def test_uniform_rates_agree_with_binomial(self):
        rates = np.full(20, 0.03)
        for k in range(5):
            assert poisson_binomial_weight(rates, k) == pytest.approx(
                binomial_weight(20, k, 0.03), rel=1e-12
            )

    def test_tail_complements_head(self):
        rng = np.random.default_rng(9)
        rates = rng.random(12) * 0.2
        head = poisson_binomial_weights(rates, 3)
        assert poisson_binomial_tail(rates, 3) == pytest.approx(
            1.0 - head.sum()
        )

    def test_zero_rates_degenerate(self):
        head = poisson_binomial_weights(np.zeros(5), 3)
        assert head[0] == 1.0
        assert head[1:].sum() == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            poisson_binomial_weights([0.5, 1.5], 2)


class TestBiasedPauliModel:
    def test_eta_one_is_exactly_e1_1(self):
        model = BiasedPauliModel(p=0.01, eta=1.0)
        locations = toy_locations()
        assert model.draw_weights(locations) is None
        assert (model.location_rates(locations) == 0.01).all()
        assert site_universe(locations, model).uniform

    def test_weights_normalized_and_biased(self):
        model = BiasedPauliModel(p=0.01, eta=100.0)
        locations = toy_locations()
        weights = model.draw_weights(locations)
        for table, (_, kind, _) in zip(weights, locations):
            assert table.sum() == pytest.approx(1.0)
        one_q = weights[0]
        z = ONE_QUBIT_PAULIS.index("Z")
        x = ONE_QUBIT_PAULIS.index("X")
        assert one_q[z] / one_q[x] == pytest.approx(100.0)

    def test_two_qubit_letter_products(self):
        """weight(ZZ) / weight(XX) = eta^2; weight(ZI) / weight(XI) = eta."""
        model = BiasedPauliModel(p=0.01, eta=7.0)
        table = model.draw_weights(toy_locations())[1]
        pairs = list(TWO_QUBIT_PAULIS)
        ratio = table[pairs.index("ZZ")] / table[pairs.index("XX")]
        assert ratio == pytest.approx(49.0)
        ratio = table[pairs.index("ZI")] / table[pairs.index("XI")]
        assert ratio == pytest.approx(7.0)

    def test_with_p_keeps_eta(self):
        model = BiasedPauliModel(p=0.01, eta=5.0).with_p(0.03)
        assert model == BiasedPauliModel(p=0.03, eta=5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedPauliModel(p=1.5, eta=2.0)
        with pytest.raises(ValueError):
            BiasedPauliModel(p=0.1, eta=0.0)


class TestInhomogeneousModel:
    def test_kind_and_index_overrides(self):
        locations = toy_locations()
        model = InhomogeneousModel(
            p=1e-3, kind_rates={"meas": 1e-2}, overrides={0: 5e-2}
        )
        rates = model.location_rates(locations)
        assert rates[0] == 5e-2  # index override wins
        assert rates[2] == 1e-2  # meas kind
        assert rates[1] == 1e-3  # default

    def test_key_override(self):
        locations = toy_locations()
        key = locations[3][0]
        model = InhomogeneousModel(p=1e-3, overrides={key: 0.25})
        assert model.location_rates(locations)[3] == 0.25

    def test_unknown_override_rejected(self):
        locations = toy_locations()
        with pytest.raises(ValueError, match="override"):
            InhomogeneousModel(p=1e-3, overrides={999: 0.1}).location_rates(
                locations
            )
        with pytest.raises(ValueError, match="override"):
            InhomogeneousModel(
                p=1e-3, overrides={("nope",): 0.1}
            ).location_rates(locations)

    def test_with_p_rescales_everything(self):
        model = InhomogeneousModel(
            p=1e-3, kind_rates={"meas": 1e-2}, overrides={1: 2e-3}
        )
        scaled = model.with_p(2e-3)
        locations = toy_locations()
        assert scaled.location_rates(locations) == pytest.approx(
            2.0 * model.location_rates(locations)
        )

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            InhomogeneousModel(p=1e-3, kind_rates={"meas": 1.5})


class TestCorrelatedPairModel:
    def test_adjacent_pairs_share_a_wire(self):
        locations = protocol_locations(cached_protocol("steane"))
        pairs = adjacent_2q_pairs(locations)
        assert pairs  # Steane prep has back-to-back CNOT chains
        for i, j in pairs:
            assert locations[i][1] == locations[j][1] == "2q"
            assert set(locations[i][2]) & set(locations[j][2])
            assert locations[i][0][0] == locations[j][0][0]  # same segment

    def test_pair_sites_resolution(self):
        locations = toy_locations()
        model = CorrelatedPairModel(p=1e-3, pair_rate=1e-4, pairs=((1, 4),))
        assert model.pair_sites(locations) == ((1, 4, 1e-4),)

    def test_invalid_pairs_rejected(self):
        locations = toy_locations()
        with pytest.raises(ValueError):
            CorrelatedPairModel(
                p=1e-3, pair_rate=1e-4, pairs=((1, 99),)
            ).pair_sites(locations)
        with pytest.raises(ValueError):
            CorrelatedPairModel(p=1e-3, pair_rate=1.5)

    def test_with_p_scales_pair_rate(self):
        model = CorrelatedPairModel(p=1e-3, pair_rate=1e-4).with_p(2e-3)
        assert model.pair_rate == pytest.approx(2e-4)
        assert model.p == 2e-3

    def test_base_model_draws_inherited(self):
        locations = toy_locations()
        model = CorrelatedPairModel(
            p=1e-3,
            pair_rate=1e-4,
            pairs=((1, 4),),
            base=BiasedPauliModel(p=1e-3, eta=10.0),
        )
        weights = model.draw_weights(locations)
        assert weights is not None
        universe = site_universe(locations, model)
        # The pair site's draw table is the product of its members'.
        pair_table = universe._draw_weight_tables()[-1]
        assert pair_table.size == 15 * 15
        assert pair_table.sum() == pytest.approx(1.0)


class TestSiteUniverse:
    def test_uniform_detection(self):
        locations = toy_locations()
        assert site_universe(locations, E1_1(p=0.01)).uniform
        assert site_universe(locations, ScaledNoiseModel(p=0.01)).uniform
        assert not site_universe(
            locations, ScaledNoiseModel(p=0.01, two_qubit=2.0)
        ).uniform
        # Constant rates != p must NOT take the uniform fast path: the
        # binomial shortcut would silently drop the scaling factor.
        assert not site_universe(
            locations,
            ScaledNoiseModel(
                p=0.01,
                single_qubit=5.0,
                two_qubit=5.0,
                reset=5.0,
                measurement=5.0,
            ),
        ).uniform
        assert not site_universe(
            locations, BiasedPauliModel(p=0.01, eta=3.0)
        ).uniform
        assert not site_universe(
            locations, CorrelatedPairModel(p=0.01, pair_rate=0.001, pairs=((1, 4),))
        ).uniform

    def test_rates_at_scaling_and_bounds(self):
        universe = site_universe(
            toy_locations(), ScaledNoiseModel(p=0.01, two_qubit=5.0)
        )
        scaled = universe.rates_at(0.02)
        assert scaled == pytest.approx(2.0 * universe.site_rates)
        with pytest.raises(ValueError):
            universe.rates_at(0.5)  # 2q rate would hit 25x0.5 > 1

    def test_max_strength_is_the_rescale_supremum(self):
        universe = site_universe(
            toy_locations(), ScaledNoiseModel(p=0.01, two_qubit=5.0)
        )
        ceiling = universe.max_strength()
        assert ceiling == pytest.approx(0.01 / 0.05)
        universe.rates_at(ceiling * 0.999)  # just below: fine
        with pytest.raises(ValueError):
            universe.rates_at(ceiling * 1.001)  # above: a rate crosses 1

    def test_conditional_sampler_matches_brute_force_law(self):
        """The sampled k-subset frequencies match the conditional
        Bernoulli law (proportional to the product of odds) exactly
        computed by enumeration at small n."""
        locations = toy_locations()
        model = InhomogeneousModel(
            p=2e-3, kind_rates={"meas": 2e-2}, overrides={0: 1e-2}
        )
        universe = site_universe(locations, model)
        n = universe.num_sites
        odds = universe.odds
        subsets = list(itertools.combinations(range(n), 2))
        law = np.asarray([odds[a] * odds[b] for a, b in subsets])
        law /= law.sum()
        shots = 60_000
        sites = universe.sample_sites(2, shots, np.random.default_rng(3))
        counts = {}
        for a, b in np.sort(sites, axis=1).tolist():
            counts[(a, b)] = counts.get((a, b), 0) + 1
        empirical = np.asarray(
            [counts.get(s, 0) / shots for s in subsets]
        )
        assert np.abs(empirical - law).max() < 0.01

    def test_sample_sites_exactly_k_distinct(self):
        universe = site_universe(
            toy_locations(), BiasedPauliModel(p=0.01, eta=4.0)
        )
        sites = universe.sample_sites(3, 500, np.random.default_rng(5))
        assert sites.shape == (500, 3)
        assert (sites >= 0).all()
        for row in sites:
            assert len(set(row.tolist())) == 3

    def test_zero_rate_sites_never_sampled(self):
        locations = toy_locations()
        model = InhomogeneousModel(p=1e-3, overrides={2: 0.0})
        universe = site_universe(locations, model)
        sites = universe.sample_sites(2, 2000, np.random.default_rng(6))
        assert 2 not in set(sites.ravel().tolist())

    def test_draw_indices_follow_weights(self):
        locations = toy_locations()
        universe = site_universe(locations, BiasedPauliModel(p=0.01, eta=50.0))
        rng = np.random.default_rng(7)
        sites = np.zeros(40_000, dtype=np.intp)  # a 1q location
        draws = universe.draw_indices(sites, rng.random(sites.size))
        freq = np.bincount(draws, minlength=3) / sites.size
        expected = universe._draw_weight_tables()[0]
        assert np.abs(freq - expected).max() < 0.01

    def test_row_weights_sum_to_one(self):
        locations = toy_locations()
        for model in (
            BiasedPauliModel(p=0.01, eta=9.0),
            ScaledNoiseModel(p=0.001, measurement=10.0),
            CorrelatedPairModel(p=1e-3, pair_rate=1e-4, pairs=((1, 4),)),
        ):
            universe = site_universe(locations, model)
            total = sum(weight for _, weight in universe.iter_rows())
            assert total == pytest.approx(1.0), model

    def test_pair_run_weights_sum_to_one(self):
        locations = toy_locations()
        universe = site_universe(
            locations,
            CorrelatedPairModel(
                p=1e-3,
                pair_rate=1e-4,
                pairs=((1, 4),),
                base=BiasedPauliModel(p=1e-3, eta=3.0),
            ),
        )
        total = sum(w for _, w, _, _ in universe.iter_pair_runs())
        assert total == pytest.approx(1.0)

    def test_k1_conditional_row_weights_match_brute_force(self):
        """Exact-enumeration row weights equal P(site fires alone and
        draws d | exactly one event) from first principles."""
        locations = toy_locations()
        model = InhomogeneousModel(p=2e-3, kind_rates={"2q": 1e-2})
        universe = site_universe(locations, model)
        rates = universe.site_rates
        n = rates.size
        # Brute-force conditional: P(only site s) * q / P(K = 1).
        p_k1 = poisson_binomial_weight(rates, 1)
        for (injections, weight), (site, draw) in zip(
            universe.iter_rows(),
            (
                (s, d)
                for s in range(n)
                for d in range(int(universe.site_draw_counts[s]))
            ),
        ):
            alone = rates[site]
            for other in range(n):
                if other != site:
                    alone *= 1.0 - rates[other]
            q = 1.0 / int(universe.site_draw_counts[site])
            assert weight == pytest.approx(alone * q / p_k1, rel=1e-12)

    def test_expand_pair_site_hits_both_locations(self):
        locations = toy_locations()
        universe = site_universe(
            locations, CorrelatedPairModel(p=1e-3, pair_rate=1e-4, pairs=((1, 4),))
        )
        pair_site = universe.num_locations  # the only composite site
        counts = draw_counts(locations)
        d_j = int(counts[4])
        site_idx = np.asarray([[pair_site]], dtype=np.intp)
        draw = 17
        loc_idx, draw_idx = universe.expand(
            site_idx, np.asarray([[draw]], dtype=np.intp)
        )
        row_locs = loc_idx[0][loc_idx[0] >= 0].tolist()
        assert sorted(row_locs) == [1, 4]
        produced = dict(zip(loc_idx[0].tolist(), draw_idx[0].tolist()))
        assert produced[1] == draw // d_j
        assert produced[4] == draw % d_j

    def test_site_injections_round_trip(self):
        locations = toy_locations()
        universe = site_universe(
            locations, CorrelatedPairModel(p=1e-3, pair_rate=1e-4, pairs=((1, 4),))
        )
        label, injections = universe.site_injections(universe.num_locations, 0)
        assert isinstance(label, tuple) and len(label) == 2
        assert set(injections) == {locations[1][0], locations[4][0]}

    def test_bernoulli_batch_rate_statistics(self):
        locations = toy_locations()
        model = InhomogeneousModel(p=0.02, overrides={0: 0.2})
        universe = site_universe(locations, model)
        loc_idx, _ = universe.sample_bernoulli(20_000, np.random.default_rng(8))
        hits = loc_idx[loc_idx >= 0]
        rate0 = (hits == 0).sum() / 20_000
        assert rate0 == pytest.approx(0.2, abs=0.01)

    def test_model_batch_routes_through_universe(self):
        """sample_injections_model_batch delegates for weighted/pair models."""
        locations = toy_locations()
        model = CorrelatedPairModel(p=0.05, pair_rate=0.2, pairs=((1, 4),))
        loc_idx, draw_idx = sample_injections_model_batch(
            locations, model, 500, np.random.default_rng(9)
        )
        # Pair firings produce shots containing both member locations.
        both = 0
        for row in loc_idx:
            row = set(row[row >= 0].tolist())
            if {1, 4} <= row:
                both += 1
        assert both > 0

    def test_rejects_rates_at_or_above_one(self):
        locations = toy_locations()
        with pytest.raises(ValueError):
            site_universe(locations, InhomogeneousModel(p=1e-3, overrides={0: 1.0}))

    def test_rejects_negative_pair_rates(self):
        """A duck-typed model slipping a negative pair rate past the
        frozen-dataclass validation must fail at universe compile time,
        not corrupt the odds math silently."""
        locations = toy_locations()

        class Sloppy:
            p = 1e-3

            def probability(self, kind):
                return 1e-3

            def pair_sites(self, locs):
                return ((1, 4, -1e-4),)

        with pytest.raises(ValueError, match="pair rates"):
            site_universe(locations, Sloppy())


class TestComposeInjections:
    def test_xor_composition(self):
        a = Injection(paulis=((0, "X"),))
        b = Injection(paulis=((0, "Z"), (1, "X")))
        composed = compose_injections(a, b)
        assert composed == Injection(paulis=((0, "Y"), (1, "X")))

    def test_self_inverse(self):
        a = Injection(paulis=((2, "Y"),))
        assert compose_injections(a, a) == Injection()

    def test_flips_cancel(self):
        flip = Injection(flip=True)
        assert compose_injections(flip, flip) == Injection(flip=False)
        assert compose_injections(flip, Injection(flip=False)) == flip

    def test_flip_pauli_mix_rejected(self):
        with pytest.raises(ValueError):
            compose_injections(
                Injection(flip=True), Injection(paulis=((0, "X"),))
            )

    def test_merge_injection_dicts(self):
        key_a, key_b = (("seg",), 0), (("seg",), 1)
        merged = merge_injection_dicts(
            {key_a: Injection(paulis=((0, "X"),))},
            {
                key_a: Injection(paulis=((0, "Z"),)),
                key_b: Injection(paulis=((1, "X"),)),
            },
        )
        assert merged[key_a] == Injection(paulis=((0, "Y"),))
        assert merged[key_b] == Injection(paulis=((1, "X"),))


class TestLegacyModelsOnTheSeam:
    """E1_1 / ScaledNoiseModel qualify for the model seam as-is —
    including the ``with_p`` sweep knob the direct-MC paths call."""

    def test_e1_1_with_p(self):
        assert E1_1(p=0.1).with_p(0.02) == E1_1(p=0.02)

    def test_scaled_with_p_keeps_factors_and_revalidates(self):
        model = ScaledNoiseModel(p=1e-3, two_qubit=5.0, measurement=10.0)
        scaled = model.with_p(2e-3)
        assert scaled == ScaledNoiseModel(
            p=2e-3, two_qubit=5.0, measurement=10.0
        )
        with pytest.raises(ValueError):
            model.with_p(0.5)  # 2q rate would exceed 1

    def test_every_zoo_model_has_with_p(self):
        locations = toy_locations()
        for model in (
            E1_1(p=1e-3),
            ScaledNoiseModel(p=1e-3, two_qubit=5.0),
            BiasedPauliModel(p=1e-3, eta=10.0),
            InhomogeneousModel(p=1e-3, kind_rates={"meas": 1e-2}),
            CorrelatedPairModel(p=1e-3, pair_rate=1e-4, pairs=((1, 4),)),
        ):
            from repro.sim.noisemodels import model_location_rates

            rescaled = model.with_p(2e-3)
            assert rescaled.p == 2e-3
            assert model_location_rates(
                locations, rescaled
            ) == pytest.approx(2.0 * model_location_rates(locations, model))


class TestParseNoiseSpec:
    def test_model_zoo(self):
        assert parse_noise_spec("e1_1:p=1e-3") == E1_1(p=1e-3)
        assert parse_noise_spec("uniform:p=0.01") == E1_1(p=0.01)
        assert parse_noise_spec("biased:eta=100,p=1e-3") == BiasedPauliModel(
            p=1e-3, eta=100.0
        )
        assert parse_noise_spec(
            "scaled:p=1e-3,two_qubit=5,measurement=10"
        ) == ScaledNoiseModel(p=1e-3, two_qubit=5.0, measurement=10.0)
        assert parse_noise_spec(
            "inhom:p=1e-3,meas=1e-2,loc12=5e-3"
        ) == InhomogeneousModel(
            p=1e-3, kind_rates={"meas": 1e-2}, overrides={12: 5e-3}
        )
        assert parse_noise_spec(
            "correlated:p=1e-3,pair_rate=1e-4,pairs=1-4;2-5"
        ) == CorrelatedPairModel(
            p=1e-3, pair_rate=1e-4, pairs=((1, 4), (2, 5))
        )
        assert parse_noise_spec(
            "correlated:p=1e-3,pair_rate=1e-4"
        ).pairs == "adjacent"

    def test_parsed_models_pickle(self):
        for spec in (
            "biased:eta=100,p=1e-3",
            "inhom:p=1e-3,meas=1e-2",
            "correlated:p=1e-3,pair_rate=1e-4",
        ):
            model = parse_noise_spec(spec)
            assert pickle.loads(pickle.dumps(model)) == model

    def test_errors_are_loud(self):
        with pytest.raises(ValueError, match="unknown noise model"):
            parse_noise_spec("thermal:p=1")
        with pytest.raises(ValueError, match="needs"):
            parse_noise_spec("biased:eta=10")
        with pytest.raises(ValueError, match="unknown fields"):
            parse_noise_spec("biased:eta=10,p=1e-3,zeta=2")
        with pytest.raises(ValueError, match="key=value"):
            parse_noise_spec("biased:eta")
