"""Cross-validation of the batched bit-packed engine against the per-shot
reference runner.

The batched engine's claim is *bit-for-bit* equivalence: for the same
injection dicts it must reproduce every observable of
``ProtocolRunner.run`` — data frame, recorded flips, branch decisions,
early termination — and hence identical acceptance/logical-failure
verdicts. These tests pin that on enumerated k<=1 fault sets, sampled
k=2 pairs, and seeded random strata for the fast catalog codes.
"""

import numpy as np
import pytest

from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.logical import LogicalJudge
from repro.sim.noise import (
    fault_draws,
    materialize_stratum,
    sample_injections_fixed_k,
    sample_injections_stratum,
)
from repro.sim.sampler import BatchedSampler, ReferenceSampler, make_sampler
from repro.sim.subset import SubsetSampler

from ..conftest import FAST_CODES, cached_protocol

CROSS_CODES = ["steane", "shor", "surface_3", "carbon"]


def assert_shot_matches(batch_result, shot, reference_result):
    """One shot of a BatchResult must mirror a reference RunResult."""
    view = batch_result.result(shot)
    assert np.array_equal(view.data_x, reference_result.data_x)
    assert np.array_equal(view.data_z, reference_result.data_z)
    bits = set(view.flips) | set(reference_result.flips)
    for bit in bits:
        assert view.flips.get(bit, 0) == reference_result.flips.get(bit, 0), bit
    assert view.branches_taken == reference_result.branches_taken
    assert view.terminated_early == reference_result.terminated_early


def assert_batches_match(protocol, injection_dicts):
    batched = BatchedSampler(protocol)
    runner = ProtocolRunner(protocol)
    batch = batched.run(injection_dicts)
    for shot, injections in enumerate(injection_dicts):
        assert_shot_matches(batch, shot, runner.run(injections))


class TestEnumeratedFaults:
    @pytest.mark.parametrize("key", CROSS_CODES)
    def test_every_single_fault_draw_matches(self, key):
        """Exhaustive k=1: every location, every conditional draw."""
        protocol = cached_protocol(key)
        injection_dicts = [{}]  # fault-free shot rides along
        for location, kind, wires in protocol_locations(protocol):
            injection_dicts += [
                {location: draw} for draw in fault_draws(kind, wires)
            ]
        assert_batches_match(protocol, injection_dicts)

    @pytest.mark.parametrize("key", ["steane", "surface_3"])
    def test_sampled_fault_pairs_match(self, key):
        """k=2 spot-check over random (pair, draw) combinations."""
        protocol = cached_protocol(key)
        locations = protocol_locations(protocol)
        rng = np.random.default_rng(97)
        injection_dicts = []
        for _ in range(300):
            i, j = rng.choice(len(locations), size=2, replace=False)
            picks = {}
            for index in (int(i), int(j)):
                location, kind, wires = locations[index]
                draws = fault_draws(kind, wires)
                picks[location] = draws[rng.integers(len(draws))]
            injection_dicts.append(picks)
        assert_batches_match(protocol, injection_dicts)


class TestRandomStrata:
    @pytest.mark.parametrize("key", CROSS_CODES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_seeded_stratum_outcomes_match(self, key, k):
        protocol = cached_protocol(key)
        locations = protocol_locations(protocol)
        rng = np.random.default_rng(hash((key, k)) % 2**32)
        injection_dicts = [
            sample_injections_fixed_k(locations, k, rng) for _ in range(150)
        ]
        assert_batches_match(protocol, injection_dicts)

    @pytest.mark.parametrize("key", CROSS_CODES)
    def test_failure_verdicts_identical(self, key):
        """The headline contract: identical logical-failure verdicts."""
        protocol = cached_protocol(key)
        batched = BatchedSampler(protocol)
        reference = ReferenceSampler(protocol)
        rng = np.random.default_rng(5)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 2, 400, rng
        )
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )

    def test_indexed_equals_dict_path(self):
        """Grouping by index arrays and by dicts must execute identically."""
        protocol = cached_protocol("steane")
        batched = BatchedSampler(protocol)
        rng = np.random.default_rng(11)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 3, 200, rng
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        assert np.array_equal(
            batched.failures_indexed(loc_idx, draw_idx),
            batched.failures(dicts),
        )


class TestResidualWeights:
    """The vectorized coset-weight (certificate) API of both engines."""

    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_engines_agree_on_residual_weights(self, key):
        from repro.core.errors import error_reducer

        protocol = cached_protocol(key)
        x_reducer = error_reducer(protocol.code, "X")
        z_reducer = error_reducer(protocol.code, "Z")
        batched = BatchedSampler(protocol)
        reference = ReferenceSampler(protocol)
        rng = np.random.default_rng(31)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 2, 250, rng
        )
        bx, bz = batched.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
        rx, rz = reference.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
        assert np.array_equal(bx, rx)
        assert np.array_equal(bz, rz)

    def test_matches_per_shot_coset_weight(self):
        from repro.core.errors import error_reducer

        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        x_reducer = error_reducer(protocol.code, "X")
        z_reducer = error_reducer(protocol.code, "Z")
        batched = BatchedSampler(protocol)
        rng = np.random.default_rng(37)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 2, 120, rng
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        x_weights, z_weights = batched.residual_weights(
            dicts, x_reducer, z_reducer
        )
        for shot, injections in enumerate(dicts):
            result = runner.run(injections)
            assert x_weights[shot] == x_reducer.coset_weight(result.data_x)
            assert z_weights[shot] == z_reducer.coset_weight(result.data_z)

    def test_batch_result_packed_planes(self):
        protocol = cached_protocol("steane")
        batched = BatchedSampler(protocol)
        rng = np.random.default_rng(41)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 1, 70, rng
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        batch = batched.run(dicts)
        assert batch.x_words is not None and batch.z_words is not None
        assert batch.x_words.shape == (protocol.code.n, (70 + 63) // 64)
        # Packed planes unpack back to the unpacked data arrays.
        for wire in range(protocol.code.n):
            bits = np.unpackbits(
                batch.x_words[wire : wire + 1].view(np.uint8),
                bitorder="little",
                count=70,
            )
            assert np.array_equal(bits, batch.data_x[:, wire])

    def test_batch_result_residual_api(self):
        from repro.core.errors import error_reducer

        protocol = cached_protocol("steane")
        x_reducer = error_reducer(protocol.code, "X")
        z_reducer = error_reducer(protocol.code, "Z")
        batched = BatchedSampler(protocol)
        rng = np.random.default_rng(43)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 2, 150, rng
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        batch = batched.run(dicts)
        x_weights = batch.residual_weights(x_reducer, "x")
        z_weights = batch.residual_weights(z_reducer, "z")
        ex, ez = batched.residual_weights(dicts, x_reducer, z_reducer)
        assert np.array_equal(x_weights, ex)
        assert np.array_equal(z_weights, ez)
        heavy = batch.heavy_mask(x_reducer, z_reducer, 1)
        assert np.array_equal(heavy, (ex > 1) | (ez > 1))
        with pytest.raises(ValueError):
            batch.residual_weights(x_reducer, "y")

    def test_empty_batch(self):
        from repro.core.errors import error_reducer

        protocol = cached_protocol("steane")
        batched = BatchedSampler(protocol)
        x_reducer = error_reducer(protocol.code, "X")
        z_reducer = error_reducer(protocol.code, "Z")
        xw, zw = batched.residual_weights([], x_reducer, z_reducer)
        assert xw.size == 0 and zw.size == 0


class TestVectorizedJudge:
    def test_failure_mask_matches_per_shot_judge(self):
        protocol = cached_protocol("steane")
        judge = LogicalJudge(protocol.code)
        batched = BatchedSampler(protocol)
        rng = np.random.default_rng(23)
        loc_idx, draw_idx = sample_injections_stratum(
            batched.locations, 2, 300, rng
        )
        dicts = materialize_stratum(batched.locations, loc_idx, draw_idx)
        batch = batched.run(dicts)
        expected = np.array(
            [judge.is_logical_failure(batch.result(s)) for s in range(300)]
        )
        assert np.array_equal(judge.failure_mask(batch.data_x), expected)

    def test_failure_mask_empty(self):
        judge = LogicalJudge(cached_protocol("steane").code)
        assert judge.failure_mask(np.zeros((0, 7), dtype=np.uint8)).size == 0


class TestSubsetSamplerEngines:
    @pytest.mark.parametrize("key", FAST_CODES)
    def test_engines_produce_identical_tallies(self, key):
        """Same protocol + same seed => same trials/failures per stratum,
        whichever engine executes the shots."""
        protocol = cached_protocol(key)
        tallies = {}
        for engine in ("batched", "reference"):
            sampler = SubsetSampler.for_protocol(
                protocol,
                engine=engine,
                k_max=2,
                rng=np.random.default_rng(2025),
            )
            sampler.sample(600, allocation="uniform")
            tallies[engine] = {
                k: (stats.trials, stats.failures)
                for k, stats in sampler.strata.items()
            }
        assert tallies["batched"] == tallies["reference"]

    def test_exact_k1_matches_legacy_path(self):
        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        legacy = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            protocol_locations(protocol),
            k_max=2,
            rng=np.random.default_rng(0),
        )
        legacy.enumerate_k1_exact()
        batched = SubsetSampler.for_protocol(
            protocol, engine="batched", k_max=2, rng=np.random.default_rng(0)
        )
        batched.enumerate_k1_exact()
        assert legacy.strata[1].failures == batched.strata[1].failures

    def test_exact_k2_matches_across_engines(self):
        protocol = cached_protocol("steane")
        sums = {}
        for engine in ("batched", "reference"):
            sampler = SubsetSampler.for_protocol(
                protocol, engine=engine, k_max=2, rng=np.random.default_rng(0)
            )
            sampler.enumerate_k2_exact()
            sums[engine] = sampler.strata[2].failures
        assert sums["batched"] == sums["reference"]

    def test_constructor_requires_some_evaluator(self):
        with pytest.raises(ValueError):
            SubsetSampler(None, [((("seg",), 0), "meas", (0,))], k_max=1)


class TestEngineFactory:
    def test_make_sampler_names(self):
        protocol = cached_protocol("steane")
        assert make_sampler(protocol, engine="batched").name == "batched"
        assert make_sampler(protocol, engine="reference").name == "reference"

    def test_make_sampler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_sampler(cached_protocol("steane"), engine="warp")

    def test_empty_batch(self):
        engine = BatchedSampler(cached_protocol("steane"))
        assert engine.failures([]).size == 0
        result = engine.run([])
        assert result.num_shots == 0
