"""Tests for the streamed intra-code sharding layer (``repro.sim.shard``).

Pins the three contracts the sharded path is built on:

* **merge exactness** — chunk partials fold into exactly the totals a
  single-slab evaluation produces (counts, histograms, sparse pair
  tallies, enumeration-ordered evidence);
* **deterministic chunk seeding** — a plan's results depend only on the
  plan, never on the worker count that executes it;
* **bounded streaming** — planning is lazy and no chunk ever
  materializes more than ``max_slab`` configurations, so strata far too
  large to materialize evaluate in constant memory.
"""

import numpy as np
import pytest

from repro.sim.noise import E1_1
from repro.sim.sampler import make_sampler
from repro.sim.shard import (
    ShardedEvaluator,
    ShardPartial,
    StratumChunk,
    StratumPlanner,
    merge_partials,
)
from repro.sim.subset import SubsetSampler, direct_mc

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def steane_engine():
    return make_sampler(cached_protocol("steane"))


class TestPlanner:
    def test_stratum_chunks_bounded_and_seeded(self, steane_engine):
        planner = StratumPlanner(steane_engine.locations, max_slab=300)
        chunks = list(planner.plan_stratum(2, 1000, entropy=77))
        assert [c.shots for c in chunks] == [300, 300, 300, 100]
        assert [c.entropy for c in chunks] == [(77, i) for i in range(4)]
        assert planner.num_chunks(1000) == 4

    def test_oversized_stratum_plans_lazily(self, steane_engine):
        """A stratum that would need ~30 GB materialized plans in O(1):
        the generator yields specs (a few ints each), nothing else."""
        planner = StratumPlanner(steane_engine.locations, max_slab=256)
        plan = planner.plan_stratum(4, 10**9, entropy=1)
        first = next(plan)
        second = next(plan)
        assert isinstance(first, StratumChunk)
        assert first.shots == second.shots == 256
        assert planner.num_chunks(10**9) == -(-(10**9) // 256)

    def test_row_universe_covers_draw_tables(self, steane_engine):
        from repro.sim.noise import draw_counts

        planner = StratumPlanner(steane_engine.locations, max_slab=50)
        assert planner.num_rows() == int(
            draw_counts(steane_engine.locations).sum()
        )
        chunks = list(planner.plan_rows())
        assert chunks[0].lo == 0
        assert chunks[-1].hi == planner.num_rows()
        covered = sum(c.hi - c.lo for c in chunks)
        assert covered == planner.num_rows()

    def test_materialize_rows_round_trips(self, steane_engine):
        planner = StratumPlanner(steane_engine.locations, max_slab=64)
        for chunk in planner.plan_rows():
            loc_idx, draw_idx = planner.materialize_rows(chunk)
            assert loc_idx.shape == (chunk.hi - chunk.lo, 1)
            assert (loc_idx >= 0).all()
            # Every draw index is valid for its location's table.
            from repro.sim.noise import draw_counts

            counts = draw_counts(steane_engine.locations)
            assert (draw_idx[:, 0] < counts[loc_idx[:, 0]]).all()

    def test_pair_plan_bounds_runs(self, steane_engine):
        planner = StratumPlanner(steane_engine.locations, max_slab=500)
        total = 0
        for chunk in planner.plan_pairs():
            loc_idx, draw_idx, pair_ids = planner.materialize_pairs(chunk)
            # A chunk holds at most max_slab runs (>= one whole pair).
            assert loc_idx.shape[0] <= max(500, 15 * 15)
            assert (np.diff(pair_ids) >= 0).all()
            total += loc_idx.shape[0]
        assert total == planner.total_pair_runs()

    def test_pair_of_inverts_enumeration(self, steane_engine):
        planner = StratumPlanner(steane_engine.locations, max_slab=100)
        num = len(steane_engine.locations)
        pair_id = 0
        for i in range(num):
            for j in range(i + 1, num):
                assert planner.pair_of(pair_id) == (i, j)
                pair_id += 1

    def test_max_slab_validation(self, steane_engine):
        with pytest.raises(ValueError):
            StratumPlanner(steane_engine.locations, max_slab=0)


class TestMergeExactness:
    def test_small_chunks_merge_to_single_slab_totals(self, steane_engine):
        """The certificate workload chunked 16 rows at a time must merge
        to exactly the one-slab totals — counts, histograms, evidence."""
        fine = ShardedEvaluator(steane_engine, max_slab=16)
        coarse = ShardedEvaluator(steane_engine, max_slab=10**6)
        merged_fine = fine.reduce(
            fine.planner.plan_rows(checkable_only=True, threshold=1)
        )
        merged_coarse = coarse.reduce(
            coarse.planner.plan_rows(checkable_only=True, threshold=1)
        )
        assert merged_fine.trials == merged_coarse.trials
        assert merged_fine.heavy == merged_coarse.heavy
        np.testing.assert_array_equal(
            merged_fine.x_hist, merged_coarse.x_hist
        )
        np.testing.assert_array_equal(
            merged_fine.z_hist, merged_coarse.z_hist
        )

    def test_pair_counts_merge_exactly(self, steane_engine):
        fine = ShardedEvaluator(steane_engine, max_slab=64)
        coarse = ShardedEvaluator(steane_engine, max_slab=10**6)
        merged_fine = fine.reduce(fine.planner.plan_pairs())
        merged_coarse = coarse.reduce(coarse.planner.plan_pairs())
        assert merged_fine.failures == merged_coarse.failures
        np.testing.assert_array_equal(
            merged_fine.pair_ids, merged_coarse.pair_ids
        )
        np.testing.assert_array_equal(
            merged_fine.pair_counts, merged_coarse.pair_counts
        )
        assert merged_fine.weighted_mass == pytest.approx(
            merged_coarse.weighted_mass, rel=1e-12
        )

    def test_merge_partials_sparse_pair_aggregation(self):
        a = ShardPartial(
            index=0,
            pair_ids=np.asarray([1, 5]),
            pair_counts=np.asarray([2, 3]),
        )
        b = ShardPartial(
            index=1,
            pair_ids=np.asarray([5, 9]),
            pair_counts=np.asarray([4, 1]),
        )
        merged = merge_partials([b, a])  # arrival order must not matter
        np.testing.assert_array_equal(merged.pair_ids, [1, 5, 9])
        np.testing.assert_array_equal(merged.pair_counts, [2, 7, 1])

    def test_merge_partials_histograms_pad(self):
        a = ShardPartial(index=0, x_hist=np.asarray([4, 1]))
        b = ShardPartial(index=1, x_hist=np.asarray([1, 0, 2]))
        merged = merge_partials([a, b])
        np.testing.assert_array_equal(merged.x_hist, [5, 1, 2])

    def test_merge_partials_orders_evidence_by_index(self):
        a = ShardPartial(index=0, rows=np.asarray([3]))
        b = ShardPartial(index=1, rows=np.asarray([17]))
        merged = merge_partials([b, a])
        np.testing.assert_array_equal(merged.rows, [3, 17])

    def test_merge_partials_empty(self):
        merged = merge_partials([])
        assert merged.trials == 0
        assert merged.pair_ids is None


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sampled_strata_identical_any_worker_count(self, workers):
        protocol = cached_protocol("steane")
        tallies = {}
        for w in (1, workers):
            with SubsetSampler.for_protocol(
                protocol,
                rng=np.random.default_rng(11),
                workers=w,
                max_slab=250,
            ) as sampler:
                sampler.sample(1500, allocation="uniform")
                tallies[w] = {
                    k: (stats.trials, stats.failures)
                    for k, stats in sampler.strata.items()
                }
        assert tallies[1] == tallies[workers]

    def test_direct_mc_identical_any_worker_count(self, steane_engine):
        results = [
            direct_mc(
                steane_engine,
                E1_1(p=0.02),
                2000,
                rng=np.random.default_rng(3),
                workers=w,
                max_slab=300,
            )
            for w in (1, 2)
        ]
        assert results[0].failures == results[1].failures

    def test_exact_enumerations_identical_any_worker_count(self):
        protocol = cached_protocol("steane")
        masses = {}
        for w in (1, 2):
            with SubsetSampler.for_protocol(
                protocol,
                rng=np.random.default_rng(0),
                workers=w,
                max_slab=777,
            ) as sampler:
                sampler.enumerate_k1_exact()
                sampler.enumerate_k2_exact()
                masses[w] = (
                    sampler.strata[1].failures,
                    sampler.strata[2].failures,
                )
        assert masses[1] == masses[2]

    def test_certificate_identical_across_workers(self):
        from repro.core.ftcheck import check_fault_tolerance

        protocol = cached_protocol("steane")
        serial = check_fault_tolerance(protocol)
        sharded = check_fault_tolerance(protocol, workers=2, max_slab=32)
        assert serial == sharded == []

    def test_budget_bit_identical_across_workers_and_slabs(self):
        from repro.core.analysis import two_fault_error_budget

        protocol = cached_protocol("steane")
        baseline = two_fault_error_budget(protocol)
        sharded = two_fault_error_budget(protocol, workers=2, max_slab=613)
        assert baseline == sharded

    def test_figure4_intra_shard_identical_across_workers(self):
        """shard="intra" must use the sharded scheme at every worker
        count, including workers=1 (the inline plan), so the series
        never depends on the pool size."""
        from repro.experiments.figure4 import run_figure4

        protocol = cached_protocol("steane")  # warm the synthesis cache
        assert protocol is not None
        series = {
            w: run_figure4(
                ["steane"], shots=400, workers=w, shard="intra"
            )[0]
            for w in (1, 2)
        }
        assert series[1].shots == series[2].shots
        assert [e.mean for e in series[1].estimates] == [
            e.mean for e in series[2].estimates
        ]

    def test_figure4_auto_keeps_legacy_stream_at_workers_1(self):
        """A plain workers=1 run must reproduce the same numbers whether
        one code or many are requested — auto only opts into the sharded
        stream when intra parallelism is actually asked for."""
        from repro.experiments.figure4 import run_figure4

        protocol = cached_protocol("steane")
        assert protocol is not None
        single = run_figure4(["steane"], shots=400, workers=1)[0]
        swept = run_figure4(["steane", "shor"], shots=400, workers=1)[0]
        assert [e.mean for e in single.estimates] == [
            e.mean for e in swept.estimates
        ]

    def test_survey_identical_across_workers(self):
        from repro.core.ftcheck import second_order_survey

        protocol = cached_protocol("steane")
        serial = second_order_survey(
            protocol, samples=400, rng=np.random.default_rng(5)
        )
        sharded = second_order_survey(
            protocol,
            samples=400,
            rng=np.random.default_rng(5),
            workers=2,
            max_slab=64,
        )
        assert serial == sharded


class TestBoundedStreaming:
    def test_engine_never_sees_more_than_max_slab(self):
        """Route a 40 k-shot stratum through a recording engine: every
        batch the engine executes must respect the --max-slab bound."""
        protocol = cached_protocol("steane")
        engine = make_sampler(protocol)
        seen = []
        original = engine.failures_indexed

        def recording(loc_idx, draw_idx):
            seen.append(loc_idx.shape[0])
            return original(loc_idx, draw_idx)

        engine.failures_indexed = recording
        sampler = SubsetSampler(
            None,
            engine.locations,
            engine=engine,
            rng=np.random.default_rng(2),
            workers=1,
            max_slab=512,
        )
        sampler.sample_stratum(3, 40_000)
        assert max(seen) <= 512
        assert sum(seen) >= 40_000

    def test_oversized_enumeration_streams(self, steane_engine):
        """Consume only the head of a plan — the tail never materializes
        (the inline map is a generator, not a list)."""
        evaluator = ShardedEvaluator(steane_engine, max_slab=8)
        stream = evaluator.map(
            evaluator.planner.plan_rows(checkable_only=True)
        )
        first = next(stream)
        assert first.trials == 8
        stream.close()  # abandon the rest without evaluating it

    def test_spawn_start_method_round_trips(self, steane_engine):
        """The no-fork fallback rebuilds the engine per worker from the
        pickled (protocol, engine-name) payload."""
        with ShardedEvaluator(
            steane_engine, workers=2, max_slab=64, start_method="spawn"
        ) as evaluator:
            merged = merge_partials(
                evaluator.map(evaluator.planner.plan_rows())
            )
        assert merged.trials == evaluator.planner.num_rows()


class TestSamplerIntegration:
    def test_workers_requires_engine(self):
        locations = [((("seg",), i), "meas", (0,)) for i in range(4)]
        with pytest.raises(ValueError):
            SubsetSampler(lambda inj: False, locations, workers=2)

    def test_evaluator_reused_and_closed(self):
        protocol = cached_protocol("steane")
        sampler = SubsetSampler.for_protocol(
            protocol, rng=np.random.default_rng(1), workers=2, max_slab=200
        )
        sampler.sample_stratum(1, 400)
        first = sampler._evaluator
        sampler.sample_stratum(2, 400)
        assert sampler._evaluator is first  # one pool per sampler
        sampler.close()
        assert sampler._evaluator is None
