"""Unit tests for the subset-sampling estimator (the DSS substitute)."""

import math

import numpy as np
import pytest

from repro.sim.subset import (
    SubsetSampler,
    binomial_weight,
    tail_weight,
    wilson_interval,
)


class TestWeights:
    def test_binomial_normalized(self):
        n, p = 12, 0.07
        total = sum(binomial_weight(n, k, p) for k in range(n + 1))
        assert total == pytest.approx(1.0)

    def test_tail_complements_head(self):
        n, p, k_max = 20, 0.05, 3
        head = sum(binomial_weight(n, k, p) for k in range(k_max + 1))
        assert tail_weight(n, k_max, p) == pytest.approx(1 - head)

    def test_tail_zero_at_full_kmax(self):
        assert tail_weight(10, 10, 0.3) == pytest.approx(0.0)

    def test_weight_small_p_leading_order(self):
        # w_k ~ C(n,k) p^k for p -> 0.
        n, k, p = 30, 2, 1e-5
        expected = math.comb(n, k) * p**k
        assert binomial_weight(n, k, p) == pytest.approx(expected, rel=1e-2)


class TestWilson:
    def test_no_trials_maximally_uncertain(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(3, 10)
        assert lo <= 0.3 <= hi

    def test_zero_failures_lower_zero(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.05

    def test_shrinks_with_trials(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_bounded(self):
        lo, hi = wilson_interval(10, 10)
        assert 0.0 <= lo <= hi <= 1.0


def fake_failure_fn(threshold):
    """Fails iff at least ``threshold`` locations were hit."""

    def fn(injections):
        return len(injections) >= threshold

    return fn


FAKE_LOCATIONS = [((("seg",), i), "meas", (0,)) for i in range(20)]


class TestSamplerMechanics:
    def test_stratum_zero_deterministic(self):
        sampler = SubsetSampler(
            fake_failure_fn(1), FAKE_LOCATIONS, k_max=2,
            rng=np.random.default_rng(0),
        )
        assert sampler.strata[0].exact
        assert sampler.strata[0].rate == 0.0

    def test_stratum_zero_failing_circuit(self):
        sampler = SubsetSampler(
            lambda inj: True, FAKE_LOCATIONS, k_max=1,
            rng=np.random.default_rng(0),
        )
        assert sampler.strata[0].rate == 1.0

    def test_threshold_model_rates(self):
        """Failure iff >= 2 faults: f_1 = 0, f_2 = 1 exactly."""
        sampler = SubsetSampler(
            fake_failure_fn(2), FAKE_LOCATIONS, k_max=3,
            rng=np.random.default_rng(1),
        )
        sampler.sample(300, allocation="uniform")
        assert sampler.strata[1].rate == 0.0
        assert sampler.strata[2].rate == 1.0
        assert sampler.strata[3].rate == 1.0

    def test_exact_k1_enumeration(self):
        sampler = SubsetSampler(
            fake_failure_fn(1), FAKE_LOCATIONS, k_max=2,
            rng=np.random.default_rng(2),
        )
        sampler.enumerate_k1_exact()
        assert sampler.strata[1].exact
        assert sampler.strata[1].rate == pytest.approx(1.0)

    def test_exact_k1_partial_failure(self):
        # Only even locations fail.
        def fn(injections):
            return any(key[1] % 2 == 0 for key in injections)

        sampler = SubsetSampler(
            fn, FAKE_LOCATIONS, k_max=1, rng=np.random.default_rng(3)
        )
        sampler.enumerate_k1_exact()
        assert sampler.strata[1].rate == pytest.approx(0.5)

    def test_dynamic_allocation_spends_budget(self):
        sampler = SubsetSampler(
            fake_failure_fn(2), FAKE_LOCATIONS, k_max=3,
            rng=np.random.default_rng(4),
        )
        sampler.sample(500, allocation="dynamic")
        assert sampler.total_trials() == 500

    def test_unknown_allocation(self):
        sampler = SubsetSampler(
            fake_failure_fn(2), FAKE_LOCATIONS, k_max=2,
            rng=np.random.default_rng(5),
        )
        with pytest.raises(ValueError):
            sampler.sample(10, allocation="thompson")

    def test_k_max_clamped_to_locations(self):
        sampler = SubsetSampler(
            fake_failure_fn(1), FAKE_LOCATIONS[:3], k_max=10,
            rng=np.random.default_rng(6),
        )
        assert sampler.k_max == 3

    def test_k_max_validation(self):
        with pytest.raises(ValueError):
            SubsetSampler(fake_failure_fn(1), FAKE_LOCATIONS, k_max=0)


class TestEstimates:
    def make_threshold_sampler(self):
        sampler = SubsetSampler(
            fake_failure_fn(2), FAKE_LOCATIONS, k_max=3,
            rng=np.random.default_rng(7),
        )
        sampler.enumerate_k1_exact()
        sampler.sample(600, allocation="uniform")
        return sampler

    def test_estimate_matches_analytic(self):
        """Threshold-2 model: p_L = P(K >= 2) exactly computable."""
        sampler = self.make_threshold_sampler()
        n = len(FAKE_LOCATIONS)
        for p in (0.001, 0.01, 0.05):
            estimate = sampler.estimate(p)
            analytic = (
                1.0
                - binomial_weight(n, 0, p)
                - binomial_weight(n, 1, p)
            )
            # Sampled f_2 = f_3 = 1 exactly, so only the tail is missing.
            assert estimate.mean == pytest.approx(
                analytic - tail_weight(n, 3, p), rel=1e-9
            )
            assert estimate.lower <= estimate.mean <= estimate.upper

    def test_upper_includes_tail(self):
        sampler = self.make_threshold_sampler()
        estimate = sampler.estimate(0.05)
        assert estimate.upper >= estimate.mean + estimate.tail * 0.99

    def test_curve_sorted_increasing(self):
        sampler = self.make_threshold_sampler()
        curve = sampler.curve([1e-4, 1e-3, 1e-2])
        means = [e.mean for e in curve]
        assert means == sorted(means)

    def test_quadratic_scaling_of_threshold_model(self):
        """f_1 = 0 forces p_L ~ C p^2 at small p."""
        sampler = self.make_threshold_sampler()
        e1 = sampler.estimate(1e-4)
        e2 = sampler.estimate(2e-4)
        assert e2.mean / e1.mean == pytest.approx(4.0, rel=0.01)

    def test_str(self):
        sampler = self.make_threshold_sampler()
        assert "p_L" in str(sampler.estimate(0.01))
