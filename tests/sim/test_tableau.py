"""Unit tests for the CHP stabilizer tableau simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.sim.tableau import Tableau, run_circuit


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSingleQubit:
    def test_initial_state_measures_zero(self):
        tab = Tableau(1, rng())
        assert tab.measure_z(0) == 0

    def test_x_flips_outcome(self):
        tab = Tableau(1, rng())
        tab.pauli_x(0)
        assert tab.measure_z(0) == 1

    def test_z_invisible_in_z_basis(self):
        tab = Tableau(1, rng())
        tab.pauli_z(0)
        assert tab.measure_z(0) == 0

    def test_y_flips_z_outcome(self):
        tab = Tableau(1, rng())
        tab.pauli_y(0)
        assert tab.measure_z(0) == 1

    def test_plus_state_measures_x_zero(self):
        tab = Tableau(1, rng())
        tab.h(0)
        assert tab.measure_x(0) == 0

    def test_hzh_equals_x(self):
        tab = Tableau(1, rng())
        tab.h(0)
        tab.pauli_z(0)
        tab.h(0)
        assert tab.measure_z(0) == 1

    def test_s_squared_is_z(self):
        tab = Tableau(1, rng())
        tab.h(0)          # |+>
        tab.s(0)
        tab.s(0)          # Z|+> = |->
        assert tab.measure_x(0) == 1

    def test_random_measurement_collapses(self):
        tab = Tableau(1, rng(5))
        tab.h(0)
        first = tab.measure_z(0)
        # Repeated measurement must repeat the outcome.
        for _ in range(5):
            assert tab.measure_z(0) == first

    def test_random_outcomes_are_balanced(self):
        ones = 0
        for seed in range(200):
            tab = Tableau(1, rng(seed))
            tab.h(0)
            ones += tab.measure_z(0)
        assert 60 < ones < 140  # fair-ish coin

    def test_reset_z_from_one(self):
        tab = Tableau(1, rng())
        tab.pauli_x(0)
        tab.reset_z(0)
        assert tab.measure_z(0) == 0

    def test_reset_x_gives_plus(self):
        tab = Tableau(1, rng())
        tab.pauli_x(0)
        tab.reset_x(0)
        assert tab.measure_x(0) == 0


class TestTwoQubit:
    def test_bell_pair_correlated(self):
        for seed in range(20):
            tab = Tableau(2, rng(seed))
            tab.h(0)
            tab.cx(0, 1)
            a = tab.measure_z(0)
            b = tab.measure_z(1)
            assert a == b

    def test_bell_pair_x_correlated(self):
        for seed in range(10):
            tab = Tableau(2, rng(seed))
            tab.h(0)
            tab.cx(0, 1)
            assert tab.measure_x(0) == tab.measure_x(1)

    def test_cx_copies_classical_bit(self):
        tab = Tableau(2, rng())
        tab.pauli_x(0)
        tab.cx(0, 1)
        assert tab.measure_z(0) == 1
        assert tab.measure_z(1) == 1

    def test_ghz_parity(self):
        for seed in range(10):
            tab = Tableau(3, rng(seed))
            tab.h(0)
            tab.cx(0, 1)
            tab.cx(1, 2)
            outcomes = [tab.measure_z(q) for q in range(3)]
            assert len(set(outcomes)) == 1


class TestExpectationSign:
    def test_deterministic_stabilizer(self):
        tab = Tableau(2, rng())
        assert tab.expectation_sign(np.array([1, 0], dtype=np.uint8)) == 0

    def test_random_operator_returns_none(self):
        tab = Tableau(1, rng())
        tab.h(0)  # Z expectation now random
        assert tab.expectation_sign(np.array([1], dtype=np.uint8)) is None

    def test_flipped_sign(self):
        tab = Tableau(2, rng())
        tab.pauli_x(0)
        assert tab.expectation_sign(np.array([1, 0], dtype=np.uint8)) == 1
        assert tab.expectation_sign(np.array([0, 1], dtype=np.uint8)) == 0

    def test_product_parity(self):
        tab = Tableau(2, rng())
        tab.pauli_x(0)
        tab.pauli_x(1)
        # Z0 Z1 product: two flips cancel.
        assert tab.expectation_sign(np.array([1, 1], dtype=np.uint8)) == 0

    def test_does_not_disturb(self):
        tab = Tableau(2, rng())
        tab.pauli_x(0)
        tab.expectation_sign(np.array([1, 1], dtype=np.uint8))
        assert tab.measure_z(0) == 1


class TestRunCircuit:
    def test_records_outcomes(self):
        c = Circuit(2).h(0).cx(0, 1).measure_z(0, "a").measure_z(1, "b")
        _, outcomes = run_circuit(c, rng=rng(3))
        assert outcomes["a"] == outcomes["b"]

    def test_conditional_pauli_fires_on_match(self):
        c = Circuit(2)
        c.pauli_placeholder = None
        c.h(0)
        c.measure_z(0, "m")
        c.conditional_pauli(x_support=[1], condition=[("m", 1)])
        c.measure_z(1, "out")
        for seed in range(20):
            _, outcomes = run_circuit(c, rng=rng(seed))
            assert outcomes["out"] == outcomes["m"]

    def test_conditional_pauli_unconditional(self):
        c = Circuit(1)
        c.conditional_pauli(x_support=[0])
        c.measure_z(0, "m")
        _, outcomes = run_circuit(c, rng=rng())
        assert outcomes["m"] == 1

    def test_copy_isolated(self):
        tab = Tableau(1, rng())
        clone = tab.copy()
        clone.pauli_x(0)
        assert tab.measure_z(0) == 0
        assert clone.measure_z(0) == 1

    def test_steane_prep_stabilizers_deterministic(self):
        from repro.codes.catalog import steane_code
        from repro.synth.prep import prepare_zero_heuristic

        code = steane_code()
        prep = prepare_zero_heuristic(code)
        tab, _ = run_circuit(prep.circuit, Tableau(7, rng(1)))
        for row in code.hz:
            assert tab.expectation_sign(row) == 0
        for row in code.logical_z:
            assert tab.expectation_sign(row) == 0
