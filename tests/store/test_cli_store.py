"""CLI surface of the artifact store: --store/--no-store and the
``repro store ls|verify|gc`` maintenance subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def isolated_env(monkeypatch):
    """CLI invocations mutate REPRO_STORE; keep it test-local."""
    monkeypatch.setenv("REPRO_STORE", "off")


class TestParser:
    def test_store_flags_on_every_pipeline_subcommand(self):
        for command in (
            ["synthesize", "steane"],
            ["check", "steane"],
            ["ftcheck", "steane"],
            ["simulate", "steane"],
            ["table1"],
            ["figure4"],
            ["budget", "steane"],
            ["cluster", "worker", "--listen", "127.0.0.1:0"],
        ):
            args = build_parser().parse_args(command)
            assert args.store is None, command
            assert args.no_store is False, command
            args = build_parser().parse_args(command + ["--no-store"])
            assert args.no_store is True

    def test_store_and_no_store_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["synthesize", "steane", "--store", "/x", "--no-store"]
            )

    def test_store_subcommand(self):
        args = build_parser().parse_args(["store", "ls"])
        assert args.store_command == "ls"
        args = build_parser().parse_args(
            ["store", "--store", "/x", "gc", "--max-bytes", "512M"]
        )
        assert args.store_command == "gc"
        assert args.max_bytes == "512M"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "gc"])  # --max-bytes required


class TestCommands:
    def test_synthesize_populates_then_store_ls(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert (
            main(["synthesize", "steane", "--store", str(root)]) == 0
        )
        kinds = {e.kind for e in ArtifactStore(root).entries()}
        assert "protocol" in kinds and "sat" in kinds

        assert main(["store", "--store", str(root), "ls"]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out and str(root) in out

    def test_no_store_writes_nothing(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        monkeypatch.setenv("REPRO_STORE", str(root))
        assert main(["synthesize", "steane", "--no-store"]) == 0
        assert not root.exists()

    def test_store_verify_reports_and_quarantines(self, tmp_path, capsys):
        root = tmp_path / "store"
        main(["synthesize", "steane", "--store", str(root)])
        capsys.readouterr()
        store = ArtifactStore(root)
        entries = list(store.entries())
        entries[0].path.write_bytes(b"garbage")
        assert main(["store", "--store", str(root), "verify"]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert main(["store", "--store", str(root), "verify"]) == 0

    def test_store_gc_respects_byte_suffixes(self, tmp_path, capsys):
        root = tmp_path / "store"
        main(["synthesize", "steane", "--store", str(root)])
        capsys.readouterr()
        assert main(["store", "--store", str(root), "gc", "--max-bytes", "1K"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert ArtifactStore(root).total_bytes() <= 1024

    def test_store_command_refuses_disabled_store(self, capsys):
        assert main(["store", "ls"]) == 2  # REPRO_STORE=off from fixture
        assert "disabled" in capsys.readouterr().err

    def test_check_warm_and_cold_agree(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(["check", "steane", "--store", str(root)]) == 0
        cold = capsys.readouterr().out
        assert main(["check", "steane", "--store", str(root)]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert main(["check", "steane", "--no-store"]) == 0
        assert capsys.readouterr().out == cold
