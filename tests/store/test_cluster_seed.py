"""Cluster workers seed their engine LRU from the artifact store.

A worker that restarts (new process, empty in-memory LRU) used to pay a
payload transfer plus a full compile for every known digest. With the
store enabled, the payload branch writes the compiled engine back under
the session digest, so the next worker process serves the same session
from disk — ``engine_source: "store"`` in the welcome frame — and the
results stay bit-identical to the payload path.
"""

from __future__ import annotations

import threading

import pytest

from repro.sim.cluster import ClusterEvaluator, ClusterWorker
from repro.sim.sampler import make_sampler

from ..conftest import cached_protocol


@pytest.fixture
def ambient_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    return tmp_path / "store"


@pytest.fixture
def spin_worker():
    started: list[ClusterWorker] = []

    def factory(**kwargs):
        worker = ClusterWorker("127.0.0.1", 0, **kwargs)
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        started.append(worker)
        return worker

    yield factory
    for worker in started:
        worker.stop()


def _run_session(engine, address, seed=42):
    evaluator = ClusterEvaluator(engine, [address], max_slab=256)
    merged = evaluator.reduce(evaluator.planner.plan_stratum(2, 1200, seed))
    info = evaluator._links[0].info
    evaluator.close()
    return merged, info


class TestDiskSeeding:
    def test_restarted_worker_serves_from_store(
        self, ambient_store, spin_worker
    ):
        engine = make_sampler(cached_protocol("steane"), store=False)

        first_worker = spin_worker()
        base, info = _run_session(engine, first_worker.address)
        assert info["engine_cached"] is False
        assert info["engine_source"] == "payload"

        # Same worker process, second session: in-memory LRU.
        again, info = _run_session(engine, first_worker.address)
        assert info["engine_cached"] is True
        assert info["engine_source"] == "memory"

        # Fresh worker process (empty LRU): the engine comes from the
        # disk write-back, no payload transfer happens, and the tallies
        # are bit-identical to the payload-path session.
        first_worker.stop()
        second_worker = spin_worker()
        seeded, info = _run_session(engine, second_worker.address)
        assert info["engine_cached"] is True
        assert info["engine_source"] == "store"
        assert (base.trials, base.failures) == (seeded.trials, seeded.failures)
        assert (base.trials, base.failures) == (again.trials, again.failures)

    def test_store_disabled_keeps_payload_path(
        self, monkeypatch, spin_worker
    ):
        monkeypatch.setenv("REPRO_STORE", "off")
        engine = make_sampler(cached_protocol("steane"), store=False)
        worker = spin_worker()
        _, info = _run_session(engine, worker.address)
        assert info["engine_source"] == "payload"
        worker.stop()
        fresh = spin_worker()
        _, info = _run_session(engine, fresh.address)
        assert info["engine_source"] == "payload"  # nothing on disk

    def test_corrupt_store_entry_falls_back_to_payload(
        self, ambient_store, spin_worker
    ):
        from repro.store import ArtifactStore

        engine = make_sampler(cached_protocol("steane"), store=False)
        worker = spin_worker()
        base, _ = _run_session(engine, worker.address)
        worker.stop()

        # The payload branch writes two engine entries: the make_sampler
        # content key and the session-digest write-back. Corrupt both.
        store = ArtifactStore(ambient_store)
        entries = [e for e in store.entries() if e.kind == "engine"]
        assert entries
        for entry in entries:
            entry.path.write_bytes(entry.path.read_bytes()[:-9])

        fresh = spin_worker()
        recovered, info = _run_session(engine, fresh.address)
        assert info["engine_source"] == "payload"  # quarantined -> transfer
        assert (base.trials, base.failures) == (
            recovered.trials,
            recovered.failures,
        )
