"""Store integration across the pipeline consumers.

The store's core contract is *latency only, never results*: every
consumer must return bit-identical output with the store cold, warm,
and disabled. These tests also prove the warm paths are actually served
from disk (by planting sentinels under the expected keys) and pin the
truncation semantics of cached certificates and the replay semantics of
SAT transcripts.
"""

from __future__ import annotations

import pytest

from repro.codes.catalog import get_code
from repro.core.analysis import two_fault_error_budget
from repro.core.ftcheck import check_fault_tolerance
from repro.core.protocol import synthesize_protocol
from repro.core.serialize import protocol_to_json
from repro.sat.cache import CachedSolver
from repro.sat.cnf import CNF
from repro.sim.sampler import BatchedSampler, make_sampler
from repro.store import ArtifactStore, keys


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh ambient store every consumer in the test resolves."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    return ArtifactStore(tmp_path / "store")


class TestSynthesisCache:
    def test_warm_synthesis_served_from_store(self, store):
        code = get_code("steane")
        cold = synthesize_protocol(code)
        key = keys.protocol_key(
            code,
            prep_method="heuristic",
            verification_method="optimal",
            max_correction_measurements=4,
        )
        assert store.get_text("protocol", key) == protocol_to_json(cold)
        # Plant a sentinel under the key: a warm call must return it,
        # proving the store (not a re-synthesis) produced the result.
        sentinel = synthesize_protocol(get_code("shor"), store=False)
        store.put_text("protocol", key, protocol_to_json(sentinel))
        served = synthesize_protocol(code)
        assert served.code.name == "Shor"

    def test_unloadable_entry_recomputed(self, store):
        code = get_code("steane")
        cold = synthesize_protocol(code)
        key = keys.protocol_key(
            code,
            prep_method="heuristic",
            verification_method="optimal",
            max_correction_measurements=4,
        )
        store.put_text("protocol", key, "{\"not\": \"a protocol\"}")
        recovered = synthesize_protocol(code)
        assert protocol_to_json(recovered) == protocol_to_json(cold)

    def test_store_on_off_bit_identical(self, store):
        on = synthesize_protocol(get_code("steane"))
        off = synthesize_protocol(get_code("steane"), store=False)
        assert protocol_to_json(on) == protocol_to_json(off)

    def test_plus_protocol_forwards_store(self, store):
        from repro.synth.plus import synthesize_plus_protocol

        synthesize_plus_protocol(get_code("steane"))
        kinds = {entry.kind for entry in store.entries()}
        assert "protocol" in kinds


class TestEngineCache:
    def test_warm_engine_served_from_store(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        first = make_sampler(protocol)
        assert isinstance(first, BatchedSampler)
        key = keys.engine_key(protocol, "batched", None)
        # Plant a recognizable engine under the key: a warm call must
        # return the planted object, proving it came from disk.
        sentinel = make_sampler(
            synthesize_protocol(get_code("shor"), store=False), store=False
        )
        store.put_object("engine", key, sentinel)
        served = make_sampler(protocol)
        assert served.protocol.code.name == "Shor"

    def test_reference_engine_never_cached(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        make_sampler(protocol, engine="reference")
        assert not [e for e in store.entries() if e.kind == "engine"]

    def test_corrupt_engine_entry_recompiled(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        make_sampler(protocol)
        (entry,) = [e for e in store.entries() if e.kind == "engine"]
        entry.path.write_bytes(entry.path.read_bytes()[:-7])
        rebuilt = make_sampler(protocol)
        assert isinstance(rebuilt, BatchedSampler)
        assert rebuilt.protocol.code.name == "Steane"


class TestCertificateCache:
    def test_certificate_cached_and_bit_identical(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        cold = check_fault_tolerance(protocol)
        key = keys.ftcert_key(keys.protocol_digest(protocol), None)
        cached = store.get_object("ftcert", key)
        assert cached == {"max_violations": 10, "violations": cold}
        assert check_fault_tolerance(protocol) == cold
        assert check_fault_tolerance(protocol, store=False) == cold

    def test_complete_certificate_serves_any_cap(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        key = keys.ftcert_key(keys.protocol_digest(protocol), None)
        # A complete enumeration (fewer violations than its cap) with
        # sentinel contents: any requested cap slices it, no recompute.
        store.put_object(
            "ftcert",
            key,
            {"max_violations": 5, "violations": ["v1", "v2", "v3"]},
        )
        assert check_fault_tolerance(protocol, max_violations=10) == [
            "v1",
            "v2",
            "v3",
        ]
        assert check_fault_tolerance(protocol, max_violations=2) == [
            "v1",
            "v2",
        ]

    def test_truncated_certificate_recomputed_for_higher_cap(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        key = keys.ftcert_key(keys.protocol_digest(protocol), None)
        # A truncated record (len == cap) only covers caps <= 2.
        store.put_object(
            "ftcert",
            key,
            {"max_violations": 2, "violations": ["v1", "v2"]},
        )
        assert check_fault_tolerance(protocol, max_violations=1) == ["v1"]
        # A higher cap cannot be served from the truncated record: the
        # real enumeration runs (steane is FT, so it finds nothing) and
        # overwrites the sentinel.
        assert check_fault_tolerance(protocol, max_violations=5) == []
        assert store.get_object("ftcert", key)["violations"] == []

    def test_model_changes_the_key(self, store):
        from repro.sim.noisemodels import BiasedPauliModel

        protocol = synthesize_protocol(get_code("steane"))
        digest = keys.protocol_digest(protocol)
        model = BiasedPauliModel(p=1e-3, eta=10.0)
        assert keys.ftcert_key(digest, None) != keys.ftcert_key(digest, model)


class TestBudgetCache:
    def test_budget_cached_and_bit_identical(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        cold = two_fault_error_budget(protocol)
        key = keys.budget_key(keys.protocol_digest(protocol), None)
        assert store.get_object("budget", key) == cold
        assert two_fault_error_budget(protocol) == cold
        assert two_fault_error_budget(protocol, store=False) == cold

    def test_max_runs_guard_raises_identically_on_hit(self, store):
        protocol = synthesize_protocol(get_code("steane"))
        two_fault_error_budget(protocol)  # populate the cache
        with pytest.raises(ValueError, match="two-fault budget needs"):
            two_fault_error_budget(protocol, max_runs=10)
        with pytest.raises(ValueError, match="two-fault budget needs"):
            two_fault_error_budget(protocol, max_runs=10, store=False)


class TestCachedSolver:
    def _tiny_cnf(self):
        cnf = CNF()
        x, y = cnf.new_var(), cnf.new_var()
        cnf.add_clause([x, y])
        cnf.add_clause([-x, y])
        return cnf, x, y

    def test_disabled_store_is_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        cnf, x, _ = self._tiny_cnf()
        solver = CachedSolver(cnf)
        assert solver._solver is not None  # real solver, no transcript
        assert solver.solve().sat is True

    def test_transcript_recorded_then_replayed(self, store):
        cnf, x, y = self._tiny_cnf()
        first = CachedSolver(cnf, store=store)
        results = [first.solve(), first.solve([-x]), first.solve([-y])]

        second = CachedSolver(cnf, store=store)
        replayed = [second.solve(), second.solve([-x]), second.solve([-y])]
        assert second._solver is None  # pure replay: no solver was built
        for a, b in zip(results, replayed):
            assert (a.sat, a.model) == (b.sat, b.model)
            assert (a.conflicts, a.decisions, a.propagations) == (
                b.conflicts,
                b.decisions,
                b.propagations,
            )

    def test_exhausted_transcript_continues_live(self, store):
        cnf, x, y = self._tiny_cnf()
        first = CachedSolver(cnf, store=store)
        first.solve()

        baseline = CachedSolver(cnf, store=False)
        expected = [baseline.solve(), baseline.solve([-x])]

        second = CachedSolver(cnf, store=store)
        got = [second.solve(), second.solve([-x])]
        assert second._solver is not None  # materialized on exhaustion
        for a, b in zip(expected, got):
            assert (a.sat, a.model, a.conflicts) == (b.sat, b.model, b.conflicts)

        # The extended transcript was written back: a third run replays
        # both calls without building a solver.
        third = CachedSolver(cnf, store=store)
        third.solve()
        third.solve([-x])
        assert third._solver is None

    def test_diverging_sequence_truncates_and_continues(self, store):
        cnf, x, y = self._tiny_cnf()
        first = CachedSolver(cnf, store=store)
        first.solve()
        first.solve([-x])

        baseline = CachedSolver(cnf, store=False)
        expected = [baseline.solve(), baseline.solve([-y])]

        second = CachedSolver(cnf, store=store)
        got = [second.solve(), second.solve([-y])]  # diverges at call 2
        assert second._solver is not None
        for a, b in zip(expected, got):
            assert (a.sat, a.model, a.conflicts) == (b.sat, b.model, b.conflicts)

    def test_synthesis_identical_with_and_without_transcripts(self, store):
        """End-to-end: a store-served synthesis (second call replays the
        SAT transcripts) produces byte-identical protocol JSON."""
        code = get_code("surface_3")
        on_cold = synthesize_protocol(code)
        # Drop the cached protocol but keep the SAT transcripts, so the
        # second synthesis re-runs the pipeline over transcript replay.
        for entry in store.entries():
            if entry.kind == "protocol":
                entry.path.unlink()
        on_warm = synthesize_protocol(code)
        off = synthesize_protocol(code, store=False)
        assert (
            protocol_to_json(on_cold)
            == protocol_to_json(on_warm)
            == protocol_to_json(off)
        )


class TestSimulationIdentity:
    def test_curve_identical_store_on_off(self, store):
        """The figure4 pipeline (subset sampling) is bit-identical with
        the store serving the protocol and engine versus fully disabled."""
        import numpy as np

        from repro.sim.subset import SubsetSampler

        def run(store_arg):
            protocol = synthesize_protocol(get_code("steane"), store=store_arg)
            with SubsetSampler.for_protocol(
                protocol,
                k_max=2,
                rng=np.random.default_rng(7),
                store=store_arg,
            ) as sampler:
                sampler.enumerate_k1_exact()
                sampler.sample(400)
                return [
                    (e.p, e.mean, e.lower, e.upper)
                    for e in sampler.curve([1e-3, 1e-2])
                ]

        cold = run(None)  # populates the ambient store
        warm = run(None)  # serves protocol + engine from it
        off = run(False)
        assert cold == warm == off
