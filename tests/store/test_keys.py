"""Tests for the shared content-key derivations (``repro.store.keys``).

The keys are the store's correctness seam: a key that drifts between
processes costs recomputes, and a key that collides across different
inputs would serve wrong results. Both directions are pinned here,
including the cross-process stability the fork/spawn pools and cluster
workers rely on.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys

import pytest

from repro.codes.catalog import get_code
from repro.core.serialize import protocol_from_json, protocol_to_json
from repro.sat.cnf import CNF
from repro.store import keys

from ..conftest import cached_protocol


class TestProtocolKeys:
    def test_protocol_key_covers_every_parameter(self):
        base = dict(
            prep_method="heuristic",
            verification_method="optimal",
            max_correction_measurements=4,
        )
        steane = get_code("steane")
        reference = keys.protocol_key(steane, **base)
        assert keys.protocol_key(steane, **base) == reference
        assert keys.protocol_key(get_code("shor"), **base) != reference
        for field, other in [
            ("prep_method", "optimal"),
            ("verification_method", "greedy"),
            ("max_correction_measurements", 3),
        ]:
            assert (
                keys.protocol_key(steane, **{**base, field: other})
                != reference
            )

    def test_protocol_digest_stable_across_json_roundtrip(self):
        protocol = cached_protocol("steane")
        clone = protocol_from_json(protocol_to_json(protocol))
        assert keys.protocol_digest(clone) == keys.protocol_digest(protocol)

    def test_result_keys_distinct_per_artifact_class(self):
        digest = keys.protocol_digest(cached_protocol("steane"))
        assert keys.ftcert_key(digest, None) != keys.budget_key(digest, None)

    def test_model_token(self):
        assert keys.model_token(None) == "none"
        from repro.sim.noisemodels import BiasedPauliModel

        model = BiasedPauliModel(p=1e-3, eta=100.0)
        assert keys.model_token(model) == keys.model_token(model)
        assert keys.model_token(model) not in ("", "none")
        assert keys.model_token(lambda: None) == ""  # unpicklable
        assert keys.ftcert_key("d" * 64, lambda: None) is None
        assert keys.budget_key("d" * 64, lambda: None) is None


class TestEngineKey:
    def test_stable_across_compile_and_store_activity(self, tmp_path, monkeypatch):
        """Regression: the engine key must not drift when the protocol
        object accumulates in-memory state (compiled engines, pickle
        memo effects). A pickle-based key did; the JSON-digest key holds
        through an entire synthesize -> compile -> store round trip."""
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        from repro.core.protocol import synthesize_protocol
        from repro.sim.sampler import make_sampler

        protocol = synthesize_protocol(get_code("steane"))
        reference = keys.engine_key(protocol, "batched", None)
        make_sampler(protocol)  # miss: compiles and pickles into the store
        assert keys.engine_key(protocol, "batched", None) == reference
        again = synthesize_protocol(get_code("steane"))  # warm JSON load
        assert keys.engine_key(again, "batched", None) == reference
        make_sampler(again)  # hit: unpickles the stored engine
        assert keys.engine_key(again, "batched", None) == reference
        from repro.store import ArtifactStore

        engine_entries = [
            e for e in ArtifactStore(tmp_path).entries() if e.kind == "engine"
        ]
        assert len(engine_entries) == 1  # one key family, no drift splits

    def test_distinct_per_engine_and_judge(self):
        protocol = cached_protocol("steane")
        batched = keys.engine_key(protocol, "batched", None)
        assert keys.engine_key(protocol, "reference", None) != batched
        assert keys.engine_key(protocol, "batched", None) == batched


def _child_engine_key(json_text, queue):
    protocol = protocol_from_json(json_text)
    queue.put(
        (
            keys.engine_key(protocol, "batched", None),
            keys.protocol_digest(protocol),
        )
    )


class TestCrossProcessStability:
    """The digests pool workers and cluster peers agree on."""

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_engine_key_identical_in_pool_children(self, method):
        protocol = cached_protocol("steane")
        json_text = protocol_to_json(protocol)
        parent = (
            keys.engine_key(protocol, "batched", None),
            keys.protocol_digest(protocol),
        )
        ctx = multiprocessing.get_context(method)
        queue = ctx.Queue()
        child = ctx.Process(
            target=_child_engine_key, args=(json_text, queue)
        )
        child.start()
        result = queue.get(timeout=120)
        child.join()
        assert result == parent

    def test_engine_key_identical_in_fresh_interpreter(self, tmp_path):
        """A brand-new python process (a restarted CLI, a cold cluster
        worker) derives the same keys from the same protocol JSON."""
        protocol = cached_protocol("steane")
        json_path = tmp_path / "protocol.json"
        json_path.write_text(protocol_to_json(protocol))
        script = (
            "import sys\n"
            "from repro.core.serialize import load_protocol\n"
            "from repro.store import keys\n"
            "p = load_protocol(sys.argv[1])\n"
            "print(keys.engine_key(p, 'batched', None))\n"
            "print(keys.protocol_digest(p))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(json_path)],
            capture_output=True,
            text=True,
            check=True,
        )
        child_engine, child_digest = out.stdout.split()
        assert child_engine == keys.engine_key(protocol, "batched", None)
        assert child_digest == keys.protocol_digest(protocol)


class TestCnfDigest:
    def test_sensitive_to_clauses_and_vars(self):
        a = CNF()
        x, y = a.new_var(), a.new_var()
        a.add_clause([x, y])
        reference = keys.cnf_digest(a)
        assert keys.cnf_digest(a) == reference

        b = CNF()
        x, y = b.new_var(), b.new_var()
        b.add_clause([x, -y])
        assert keys.cnf_digest(b) != reference

        c = CNF()
        x, y = c.new_var(), c.new_var()
        c.new_var()
        c.add_clause([x, y])
        assert keys.cnf_digest(c) != reference
