"""Tests for the content-addressed artifact store (``repro.store``).

Pins the store's three design rules: atomic writes (a reader never sees
a torn entry, concurrent writers both land valid entries), distrust of
the disk (truncated or bit-flipped entries are quarantined and reported
as misses — never returned, never a crash), and dependency-free codecs
(an entry recorded with an unavailable codec is a miss, not corruption).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.store import ArtifactStore, resolve_store
from repro.store.store import _MAGIC, active_store


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestRoundTrip:
    def test_bytes(self, store):
        assert store.get_bytes("protocol", "ab" * 32) is None
        assert store.stats.misses == 1
        store.put_bytes("protocol", "ab" * 32, b"payload")
        assert store.get_bytes("protocol", "ab" * 32) == b"payload"
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_text(self, store):
        store.put_text("protocol", "cd" * 32, "{\"a\": 1}\n")
        assert store.get_text("protocol", "cd" * 32) == "{\"a\": 1}\n"

    def test_object(self, store):
        value = {"nested": [1, 2, 3], "flag": True}
        store.put_object("budget", "ef" * 32, value)
        assert store.get_object("budget", "ef" * 32) == value

    def test_incompressible_payload_stored_verbatim(self, store):
        raw = os.urandom(4096)  # random bytes do not compress
        store.put_bytes("engine", "11" * 32, raw)
        assert store.get_bytes("engine", "11" * 32) == raw

    def test_compressible_payload_smaller_on_disk(self, store):
        raw = b"x" * 100_000
        path = store.put_bytes("engine", "22" * 32, raw)
        assert path.stat().st_size < len(raw)
        assert store.get_bytes("engine", "22" * 32) == raw

    def test_kinds_do_not_collide(self, store):
        key = "33" * 32
        store.put_bytes("protocol", key, b"protocol value")
        store.put_bytes("engine", key, b"engine value")
        assert store.get_bytes("protocol", key) == b"protocol value"
        assert store.get_bytes("engine", key) == b"engine value"

    def test_overwrite_is_last_writer_wins(self, store):
        key = "44" * 32
        store.put_bytes("sat", key, b"first")
        store.put_bytes("sat", key, b"second")
        assert store.get_bytes("sat", key) == b"second"

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.put_bytes("protocol", "../escape", b"x")
        with pytest.raises(ValueError):
            store.get_bytes("protocol", "")

    def test_construction_never_touches_the_filesystem(self, tmp_path):
        root = tmp_path / "never-created"
        store = ArtifactStore(root)
        assert store.get_bytes("protocol", "aa" * 32) is None
        assert not root.exists()

    def test_instances_are_picklable(self, store):
        store.put_bytes("sat", "55" * 32, b"value")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get_bytes("sat", "55" * 32) == b"value"


class TestCorruption:
    """Never trust the disk: defects are quarantined, misses recompute."""

    def _entry_path(self, store, kind, key):
        return store._object_path(kind, key)

    def test_truncated_entry_quarantined_not_returned(self, store):
        key = "66" * 32
        path = store.put_bytes("ftcert", key, b"certificate body")
        path.write_bytes(path.read_bytes()[:-3])
        assert store.get_bytes("ftcert", key) is None
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert (store._quarantine_dir / path.name).exists()
        # The slot is free again: a recompute repopulates it cleanly.
        store.put_bytes("ftcert", key, b"certificate body")
        assert store.get_bytes("ftcert", key) == b"certificate body"

    def test_bit_flipped_payload_quarantined_not_returned(self, store):
        key = "77" * 32
        path = store.put_bytes("ftcert", key, b"certificate body")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x40  # flip one payload bit
        path.write_bytes(bytes(blob))
        assert store.get_bytes("ftcert", key) is None
        assert store.stats.quarantined == 1
        assert store.stats.misses == 1
        assert not path.exists()

    def test_bad_magic_quarantined(self, store):
        key = "88" * 32
        path = store.put_bytes("sat", key, b"transcript")
        path.write_bytes(b"not a store entry at all")
        assert store.get_bytes("sat", key) is None
        assert store.stats.quarantined == 1

    def test_kind_mismatch_quarantined(self, store):
        """An entry renamed across kind directories fails verification."""
        key = "99" * 32
        path = store.put_bytes("protocol", key, b"value")
        other = store._object_path("engine", key)
        other.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, other)
        assert store.get_bytes("engine", key) is None
        assert store.stats.quarantined == 1

    def test_unpicklable_object_entry_quarantined(self, store):
        key = "aa" * 32
        store.put_bytes("budget", key, b"\x80\x05 garbage that is not a pickle")
        assert store.get_object("budget", key) is None
        assert store.stats.quarantined == 1
        assert store.stats.hits == 0  # the provisional hit was corrected
        assert store.stats.misses == 1

    def test_unknown_codec_is_miss_not_corruption(self, store):
        key = "bb" * 32
        path = store.put_bytes("engine", key, b"payload")
        blob = path.read_bytes()
        # Rewrite the header naming a codec nobody has.
        import json as json_module
        import struct

        header_len = struct.unpack_from(">I", blob, len(_MAGIC))[0]
        offset = len(_MAGIC) + 4
        header = json_module.loads(blob[offset : offset + header_len])
        header["codec"] = "lz-imaginary"
        new_header = json_module.dumps(header).encode()
        path.write_bytes(
            _MAGIC
            + struct.pack(">I", len(new_header))
            + new_header
            + blob[offset + header_len :]
        )
        assert store.get_bytes("engine", key) is None
        assert store.stats.quarantined == 0  # left in place for richer envs
        assert path.exists()

    def test_verify_quarantines_every_defect(self, store):
        good = store.put_bytes("protocol", "cc" * 32, b"good")
        bad = store.put_bytes("protocol", "dd" * 32, b"bad")
        bad.write_bytes(bad.read_bytes()[:-1])
        report = store.verify()
        assert report["ok"] == 1
        assert [(k, key) for k, key, _ in report["quarantined"]] == [
            ("protocol", "dd" * 32)
        ]
        assert good.exists() and not bad.exists()


class TestMaintenance:
    def test_entries_lists_everything(self, store):
        store.put_bytes("protocol", "ee" * 32, b"p")
        store.put_bytes("engine", "ff" * 32, b"e")
        listed = [(e.kind, e.key) for e in store.entries()]
        assert listed == [("engine", "ff" * 32), ("protocol", "ee" * 32)]
        assert store.total_bytes() == sum(e.size for e in store.entries())

    def test_gc_evicts_least_recently_read_first(self, store):
        old, fresh = "ab" * 32, "cd" * 32
        path_old = store.put_bytes("engine", old, b"o" * 100)
        store.put_bytes("engine", fresh, b"f" * 100)
        # Age the untouched entry, then refresh the other via a read.
        stat = path_old.stat()
        os.utime(path_old, ns=(stat.st_atime_ns - 10**10, stat.st_mtime_ns))
        assert store.get_bytes("engine", fresh) is not None
        fresh_size = next(
            e.size for e in store.entries() if e.key == fresh
        )
        report = store.gc(max_bytes=fresh_size)
        assert report["evicted"] == 1
        assert store.get_bytes("engine", old) is None
        assert store.get_bytes("engine", fresh) is not None

    def test_gc_noop_under_budget(self, store):
        store.put_bytes("engine", "11" * 32, b"x" * 10)
        report = store.gc(max_bytes=10**9)
        assert report == {
            "evicted": 0,
            "evicted_bytes": 0,
            "remaining_bytes": store.total_bytes(),
        }

    def test_gc_removes_stray_staging_files(self, store):
        store.put_bytes("engine", "22" * 32, b"x")
        stray = store._tmp_dir / "crashed-writer.tmp"
        stray.write_bytes(b"partial")
        store.gc(max_bytes=10**9)
        assert not stray.exists()


def _racing_writer(root, key, value, barrier):
    store = ArtifactStore(root)
    barrier.wait()
    for _ in range(50):
        store.put_bytes("sat", key, value)


class TestConcurrency:
    def test_concurrent_writers_one_key_never_torn(self, tmp_path):
        """Two processes hammering one key: every read returns one of the
        two complete values (atomic rename), never a hybrid or a crash."""
        root = tmp_path / "store"
        key = "ab" * 32
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        writers = [
            ctx.Process(
                target=_racing_writer, args=(root, key, value, barrier)
            )
            for value in (b"A" * 3000, b"B" * 3000)
        ]
        for writer in writers:
            writer.start()
        store = ArtifactStore(root)
        barrier.wait()
        seen = set()
        for _ in range(200):
            raw = store.get_bytes("sat", key)
            if raw is not None:
                seen.add(raw)
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0
        assert seen <= {b"A" * 3000, b"B" * 3000}
        assert store.stats.quarantined == 0
        assert store.get_bytes("sat", key) in (b"A" * 3000, b"B" * 3000)


class TestResolution:
    def test_env_unset_resolves_default_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/nonexistent/cache")
        store = active_store()
        assert store is not None
        assert str(store.root).endswith("repro-store")

    @pytest.mark.parametrize("value", ["off", "0", "none", "false", "", " OFF "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STORE", value)
        assert active_store() is None
        assert resolve_store(None) is None

    def test_env_path_resolves_that_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert active_store().root == tmp_path

    def test_resolve_store_contract(self, monkeypatch, tmp_path, store):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert resolve_store(False) is None
        assert resolve_store(store) is store
        assert resolve_store(None).root == tmp_path
        with pytest.raises(TypeError):
            resolve_store("/a/path")


class TestPublicCodecLayer:
    """The store's codec stack as a public API (the cluster wire
    protocol compresses its frames through exactly these calls)."""

    def test_available_codecs_ordered_best_first(self):
        from repro.store import available_codecs, preferred_codec

        codecs = available_codecs()
        assert codecs[0] == preferred_codec()
        assert codecs[-1] == "none"
        assert "zlib" in codecs  # stdlib: always speakable

    def test_compress_round_trip(self):
        from repro.store import compress_blob, decompress_blob

        raw = b"repetition " * 4096
        codec, payload = compress_blob(raw)
        assert codec != "none"
        assert len(payload) < len(raw)
        assert decompress_blob(codec, payload) == raw

    def test_incompressible_falls_back_to_none(self):
        import os as _os

        from repro.store import compress_blob, decompress_blob

        raw = _os.urandom(4096)
        codec, payload = compress_blob(raw)
        assert codec == "none"
        assert payload == raw
        assert decompress_blob(codec, payload) == raw

    def test_explicit_none_is_identity(self):
        from repro.store import compress_blob

        raw = b"y" * 1000
        assert compress_blob(raw, "none") == ("none", raw)

    def test_unknown_codec_raises(self):
        from repro.store import CodecUnavailable, decompress_blob

        with pytest.raises(CodecUnavailable):
            decompress_blob("lz-imaginary", b"payload")
