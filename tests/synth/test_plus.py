"""Tests for |+...+>_L preparation via duality."""

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code
from repro.core.ftcheck import check_fault_tolerance
from repro.sim.frame import ProtocolRunner
from repro.synth.plus import (
    PlusStateJudge,
    plus_state_stabilizers,
    synthesize_plus_protocol,
)


class TestDualCode:
    def test_dual_swaps_matrices(self):
        code = get_code("shor")
        dual = code.dual()
        assert (dual.hx == code.hz).all()
        assert (dual.hz == code.hx).all()

    def test_dual_parameters_swap_distances(self):
        code = get_code("shor")
        dual = code.dual()
        assert dual.n == code.n
        assert dual.k == code.k
        assert dual.x_distance() == code.z_distance()
        assert dual.z_distance() == code.x_distance()

    def test_dual_involution(self):
        code = get_code("surface_3")
        double = code.dual().dual()
        assert (double.hx == code.hx).all()
        assert (double.hz == code.hz).all()

    def test_self_dual_codes(self):
        for key in ("steane", "hamming", "tesseract"):
            assert get_code(key).is_self_dual()

    def test_non_self_dual(self):
        assert not get_code("shor").is_self_dual()

    def test_dual_validates(self):
        for key in ("steane", "shor", "carbon"):
            get_code(key).dual().validate()


class TestPlusProtocol:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_plus_protocol_fault_tolerant(self, key):
        protocol = synthesize_plus_protocol(get_code(key))
        assert check_fault_tolerance(protocol) == []

    def test_self_dual_code_same_cost_as_zero(self):
        """For a self-dual code the plus protocol costs the same as the
        zero protocol (transversal-H symmetry)."""
        from repro.core.metrics import protocol_metrics
        from repro.core.protocol import synthesize_protocol

        code = steane_code()
        zero = protocol_metrics(synthesize_protocol(code))
        plus = protocol_metrics(synthesize_plus_protocol(code))
        assert (
            zero.total_verification_ancillas
            == plus.total_verification_ancillas
        )
        assert zero.total_verification_cnots == plus.total_verification_cnots

    def test_plus_protocol_targets_dual(self):
        protocol = synthesize_plus_protocol(get_code("shor"))
        assert protocol.code.name.endswith("~dual")


class TestPlusJudge:
    def test_clean_run_not_failure(self):
        code = steane_code()
        protocol = synthesize_plus_protocol(code)
        judge = PlusStateJudge(code)
        result = ProtocolRunner(protocol).run()
        assert not judge.is_logical_failure(result)

    def test_single_faults_never_fail(self):
        from repro.core.ftcheck import enumerate_checkable_injections

        code = steane_code()
        protocol = synthesize_plus_protocol(code)
        runner = ProtocolRunner(protocol)
        judge = PlusStateJudge(code)
        for location, injection in enumerate_checkable_injections(protocol):
            assert not judge.is_logical_failure(runner.run({location: injection}))

    def test_logical_error_scaling(self):
        """Plus-state protocol also shows O(p^2) logical scaling."""
        from repro.sim.frame import protocol_locations
        from repro.sim.subset import SubsetSampler

        code = steane_code()
        protocol = synthesize_plus_protocol(code)
        runner = ProtocolRunner(protocol)
        judge = PlusStateJudge(code)
        sampler = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            protocol_locations(protocol),
            k_max=2,
            rng=np.random.default_rng(5),
        )
        sampler.enumerate_k1_exact()
        assert sampler.strata[1].rate == 0.0


class TestPlusStabilizers:
    def test_stabilizer_count(self):
        code = steane_code()
        stabs = plus_state_stabilizers(code)
        assert stabs.shape[0] == code.hx.shape[0] + code.k

    def test_contains_logical_x(self):
        from repro.pauli.symplectic import row_space_contains

        code = steane_code()
        stabs = plus_state_stabilizers(code)
        for row in code.logical_x:
            assert row_space_contains(stabs, row)
