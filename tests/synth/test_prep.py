"""Unit tests for |0...0>_L preparation synthesis.

Functional correctness is checked against the tableau simulator: after the
synthesized circuit, every state stabilizer (X and Z generators plus
logical Z) must measure +1 deterministically.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.codes.catalog import CATALOG, get_code, steane_code
from repro.sim.tableau import Tableau, run_circuit
from repro.synth.prep import (
    prepare_zero,
    prepare_zero_heuristic,
    prepare_zero_optimal,
    verify_prep_circuit,
)


def assert_prepares_zero_logical(prep):
    """Check on the tableau that the circuit output is exactly |0...0>_L."""
    code = prep.code
    tab = Tableau(code.n, np.random.default_rng(0))
    run_circuit(prep.circuit, tab)
    # Every X stabilizer, Z stabilizer, and logical Z is deterministic +1.
    for row in code.hz:
        probe = tab.copy()
        assert probe.expectation_sign(row) == 0
    for row in code.logical_z:
        assert tab.expectation_sign(row) == 0
    # X stabilizers: conjugate through H by checking in the X basis — use
    # a measurement-based probe on a scratch ancilla-free copy instead:
    # measure X-type product = H-all, measure Z-type, H-all back.
    for row in code.hx:
        probe = tab.copy()
        for q in range(code.n):
            probe.h(q)
        assert probe.expectation_sign(row) == 0


class TestHeuristic:
    @pytest.mark.parametrize("key", list(CATALOG))
    def test_prepares_logical_zero(self, key):
        prep = prepare_zero_heuristic(get_code(key))
        assert_prepares_zero_logical(prep)

    @pytest.mark.parametrize("key", list(CATALOG))
    def test_hadamard_count_is_rank(self, key):
        code = get_code(key)
        prep = prepare_zero_heuristic(code)
        assert prep.circuit.count("H") == code.hx.shape[0]

    def test_internal_verification_passes(self):
        prep = prepare_zero_heuristic(steane_code())
        verify_prep_circuit(prep)  # should not raise

    def test_steane_cnot_count_small(self):
        # Known-good ballpark: Steane |0>_L is preparable with 8 CNOTs.
        prep = prepare_zero_heuristic(steane_code())
        assert prep.cnot_count <= 9

    def test_deterministic(self):
        a = prepare_zero_heuristic(steane_code())
        b = prepare_zero_heuristic(steane_code())
        assert [str(i) for i in a.circuit] == [str(i) for i in b.circuit]


class TestOptimal:
    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3", "carbon"])
    def test_prepares_logical_zero(self, key):
        prep = prepare_zero_optimal(get_code(key))
        assert_prepares_zero_logical(prep)

    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_never_worse_than_heuristic(self, key):
        code = get_code(key)
        assert (
            prepare_zero_optimal(code).cnot_count
            <= prepare_zero_heuristic(code).cnot_count
        )

    def test_info_set_budget_guard(self):
        code = get_code("tesseract")
        with pytest.raises(ValueError):
            prepare_zero_optimal(code, max_info_sets=10)

    def test_shor_optimal_beats_heuristic(self):
        # Paper Table I: Shor Opt prep has strictly cheaper verification
        # than Heu prep; at the circuit level our optimal prep must use no
        # more CNOTs than heuristic.
        code = get_code("shor")
        opt = prepare_zero_optimal(code)
        assert opt.cnot_count <= prepare_zero_heuristic(code).cnot_count


class TestDispatch:
    def test_prepare_zero_methods(self):
        code = steane_code()
        assert prepare_zero(code, "heuristic").method == "heuristic"
        assert prepare_zero(code, "optimal").method == "optimal"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            prepare_zero(steane_code(), "annealing")


class TestStructure:
    def test_circuit_only_h_and_cx(self):
        prep = prepare_zero_heuristic(steane_code())
        kinds = {ins.kind for ins in prep.circuit}
        assert kinds <= {"H", "CX"}

    def test_circuit_acts_on_data_only(self):
        code = steane_code()
        prep = prepare_zero_heuristic(code)
        assert prep.circuit.num_qubits == code.n

    def test_repr(self):
        assert "Steane" in repr(prepare_zero_heuristic(steane_code()))
