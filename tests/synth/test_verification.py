"""Unit tests for verification-circuit synthesis (SAT-optimal + greedy)."""

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code
from repro.core.errors import dangerous_errors, detection_basis, error_reducer
from repro.synth.prep import prepare_zero_heuristic
from repro.synth.verification import (
    dedupe_errors,
    enumerate_optimal_verifications,
    synthesize_verification_greedy,
    synthesize_verification_optimal,
)


def detects_all(measurements, errors) -> bool:
    """Every error anticommutes with at least one measurement."""
    return all(
        any(int(m @ e) % 2 for m in measurements) for e in errors
    )


def steane_instance():
    code = steane_code()
    prep = prepare_zero_heuristic(code)
    errors = dangerous_errors(prep, "X")
    basis = detection_basis(code, "X")
    return code, errors, basis


class TestOptimal:
    def test_detects_all_dangerous_errors(self):
        _, errors, basis = steane_instance()
        result = synthesize_verification_optimal(basis, errors)
        assert detects_all(result.measurements, errors)

    def test_steane_needs_exactly_one_weight_3_measurement(self):
        """Paper Table I row 1: Steane verification is 1 ancilla, 3 CNOTs."""
        _, errors, basis = steane_instance()
        result = synthesize_verification_optimal(basis, errors)
        assert result.num_ancillas == 1
        assert result.total_weight == 3

    def test_measurements_lie_in_detection_span(self):
        from repro.pauli.symplectic import row_space_contains

        _, errors, basis = steane_instance()
        result = synthesize_verification_optimal(basis, errors)
        for m in result.measurements:
            assert row_space_contains(basis, m)

    def test_empty_error_set_returns_none(self):
        """No dangerous errors — no verification needed (documented API)."""
        _, _, basis = steane_instance()
        assert synthesize_verification_optimal(basis, []) is None

    def test_single_error(self):
        code = steane_code()
        basis = detection_basis(code, "X")
        error = np.zeros(7, dtype=np.uint8)
        error[[0, 1]] = 1  # dangerous weight-2 X error
        result = synthesize_verification_optimal(basis, [error])
        assert result.num_ancillas == 1
        assert detects_all(result.measurements, [error])

    def test_optimality_vs_greedy(self):
        # SAT-optimal is never worse than greedy on any catalog instance.
        for key in ("steane", "shor", "surface_3", "11_1_3"):
            code = get_code(key)
            prep = prepare_zero_heuristic(code)
            errors = dangerous_errors(prep, "X")
            if not errors:
                continue
            basis = detection_basis(code, "X")
            opt = synthesize_verification_optimal(basis, errors)
            greedy = synthesize_verification_greedy(basis, errors)
            assert opt.num_ancillas <= greedy.num_ancillas
            if opt.num_ancillas == greedy.num_ancillas:
                assert opt.total_weight <= greedy.total_weight


class TestGreedy:
    def test_detects_all(self):
        _, errors, basis = steane_instance()
        result = synthesize_verification_greedy(basis, errors)
        assert detects_all(result.measurements, errors)

    def test_method_tag(self):
        _, errors, basis = steane_instance()
        assert synthesize_verification_greedy(basis, errors).method == "greedy"


class TestDedupe:
    def test_coset_duplicates_removed(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        e = np.zeros(7, dtype=np.uint8)
        e[[0, 1]] = 1
        shifted = e ^ code.hx[0]
        unique = dedupe_errors([e, shifted, e.copy()], reducer)
        assert len(unique) == 1

    def test_distinct_cosets_kept(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        e1 = np.zeros(7, dtype=np.uint8)
        e1[[0, 1]] = 1
        e2 = np.zeros(7, dtype=np.uint8)
        e2[[0, 3]] = 1
        assert len(dedupe_errors([e1, e2], reducer)) == 2


class TestEnumeration:
    def test_all_solutions_are_optimal_and_distinct(self):
        _, errors, basis = steane_instance()
        best = synthesize_verification_optimal(basis, errors)
        solutions = enumerate_optimal_verifications(basis, errors, limit=64)
        assert len(solutions) >= 1
        keys = set()
        for sol in solutions:
            assert sol.num_ancillas == best.num_ancillas
            assert sol.total_weight == best.total_weight
            assert detects_all(sol.measurements, errors)
            keys.add(tuple(sorted(m.tobytes() for m in sol.measurements)))
        assert len(keys) == len(solutions)

    def test_limit_respected(self):
        _, errors, basis = steane_instance()
        solutions = enumerate_optimal_verifications(basis, errors, limit=1)
        assert len(solutions) == 1

    def test_empty_errors(self):
        _, _, basis = steane_instance()
        assert enumerate_optimal_verifications(basis, []) == []
