"""Unit tests for the benchmark trend ledger (``scripts/bench_trend.py``).

The renderer satellites: metric collection must pick up the kernel/
cluster datapoints (ratios, lockstep comparisons, bytes on wire), and
the static HTML page must be self-contained — inline SVG sparklines,
escaped names, no scripts — so the CI artifact opens anywhere.
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_SPEC = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "scripts" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_trend", bench_trend)
_SPEC.loader.exec_module(bench_trend)


def _history(metric_runs):
    return [
        {"run": {"sha": f"sha{i}", "timestamp": i}, "metrics": metrics}
        for i, metrics in enumerate(metric_runs)
    ]


class TestMetricCollection:
    def test_kernel_and_cluster_keys_collected(self, tmp_path):
        (tmp_path / "BENCH_kernels.json").write_text(
            json.dumps(
                {
                    "benchmark": "kernels",
                    "kernel_speedup": 2.5,
                    "identical": True,
                    "kernel_backend": "numba",
                }
            )
        )
        (tmp_path / "BENCH_cluster.json").write_text(
            json.dumps(
                {
                    "cluster_speedup": 1.03,
                    "pipeline_vs_lockstep": 0.92,
                    "compression_ratio": 1.1,
                    "bytes_on_wire": 12345,
                    "frame_codec": "zlib",
                }
            )
        )
        metrics = bench_trend.collect_metrics(tmp_path)
        assert metrics["BENCH_kernels.json:kernel_speedup"] == 2.5
        assert metrics["BENCH_cluster.json:pipeline_vs_lockstep"] == 0.92
        assert metrics["BENCH_cluster.json:compression_ratio"] == 1.1
        assert metrics["BENCH_cluster.json:bytes_on_wire"] == 12345
        # Booleans and strings are not metrics.
        assert not any("identical" in key for key in metrics)
        assert not any("codec" in key for key in metrics)

    def test_history_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        history = _history([{"a:b_seconds": 1.0}, {"a:b_seconds": 2.0}])
        bench_trend.save_history(path, history, keep=50)
        assert bench_trend.load_history(path) == history

    def test_history_keep_truncates(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        history = _history([{"a:m_seconds": float(i)} for i in range(10)])
        bench_trend.save_history(path, history, keep=3)
        kept = bench_trend.load_history(path)
        assert len(kept) == 3
        assert kept[-1]["metrics"]["a:m_seconds"] == 9.0


class TestSvgSparkline:
    def test_polyline_spans_the_series(self):
        svg = bench_trend._svg_sparkline([1.0, 3.0, 2.0, 4.0])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg and "circle" in svg
        assert "<script" not in svg

    def test_single_datapoint_placeholder(self):
        assert "single datapoint" in bench_trend._svg_sparkline([1.0])

    def test_flat_series_does_not_divide_by_zero(self):
        svg = bench_trend._svg_sparkline([2.0, 2.0, 2.0])
        assert "polyline" in svg


class TestRenderHtml:
    def test_page_is_self_contained(self):
        history = _history(
            [
                {"BENCH_kernels.json:kernel_speedup": 2.0},
                {"BENCH_kernels.json:kernel_speedup": 2.5},
            ]
        )
        page = bench_trend.render_html(history, max_points=50)
        assert page.startswith("<!doctype html>")
        assert page.endswith("</body></html>")
        assert "kernel_speedup" in page
        assert "+25.0%" in page
        assert "<polyline" in page
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in page
        assert "http" not in page.split("</style>")[-1]

    def test_empty_history_renders_placeholder(self):
        page = bench_trend.render_html([], max_points=50)
        assert "no benchmark history" in page

    def test_metric_names_escaped(self):
        history = _history([{"BENCH_x.json:<evil>_seconds": 1.0}])
        page = bench_trend.render_html(history, max_points=50)
        assert "<evil>" not in page
        assert "&lt;evil&gt;" in page

    def test_new_metric_marked_new(self):
        history = _history(
            [
                {"BENCH_x.json:a_seconds": 1.0},
                {"BENCH_x.json:a_seconds": 1.0, "BENCH_x.json:b_ratio": 2.0},
            ]
        )
        page = bench_trend.render_html(history, max_points=50)
        assert ">new</span>" in page
