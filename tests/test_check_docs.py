"""Unit tests for the docs link checker (``scripts/check_docs.py``).

The ISSUE-5 satellite: links into deleted anchors of ``ROADMAP.md`` /
``CHANGES.md`` must be flagged like any ``docs/`` anchor, and
reference-style links are checked against their definitions.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_SPEC = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs_module = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_docs", check_docs_module)
_SPEC.loader.exec_module(check_docs_module)
check_docs = check_docs_module.check_docs


def write(root: Path, name: str, text: str) -> None:
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


class TestInlineLinks:
    def test_clean_tree_passes(self, tmp_path):
        write(tmp_path, "ROADMAP.md", "# Open items\n\ndetails\n")
        write(
            tmp_path,
            "docs/guide.md",
            "see [the roadmap](../ROADMAP.md#open-items)\n",
        )
        assert check_docs(tmp_path) == []

    def test_deleted_roadmap_anchor_is_flagged(self, tmp_path):
        write(tmp_path, "ROADMAP.md", "# Renamed section\n")
        write(
            tmp_path,
            "docs/guide.md",
            "see [the roadmap](../ROADMAP.md#open-items)\n",
        )
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "broken anchor" in problems[0]
        assert "ROADMAP.md#open-items" in problems[0]

    def test_deleted_changes_anchor_is_flagged(self, tmp_path):
        write(tmp_path, "CHANGES.md", "PR 1: something\n")
        write(tmp_path, "README.md", "[log](CHANGES.md#pr-1-summary)\n")
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "CHANGES.md#pr-1-summary" in problems[0]

    def test_missing_target_flagged(self, tmp_path):
        write(tmp_path, "README.md", "[gone](docs/nope.md)\n")
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "missing target" in problems[0]

    def test_self_anchor(self, tmp_path):
        write(tmp_path, "README.md", "# Intro\n\n[up](#intro) [bad](#nope)\n")
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "#nope" in problems[0]

    def test_external_links_skipped(self, tmp_path):
        write(tmp_path, "README.md", "[x](https://example.com/a#b)\n")
        assert check_docs(tmp_path) == []


class TestReferenceStyleLinks:
    def test_defined_reference_resolves(self, tmp_path):
        write(tmp_path, "ROADMAP.md", "# Open items\n")
        write(
            tmp_path,
            "README.md",
            "see [the roadmap][rm]\n\n[rm]: ROADMAP.md#open-items\n",
        )
        assert check_docs(tmp_path) == []

    def test_reference_to_deleted_anchor_flagged(self, tmp_path):
        write(tmp_path, "ROADMAP.md", "# Something else\n")
        write(
            tmp_path,
            "README.md",
            "see [the roadmap][rm]\n\n[rm]: ROADMAP.md#open-items\n",
        )
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "broken anchor" in problems[0]

    def test_undefined_label_is_prose_not_an_error(self, tmp_path):
        """GitHub renders [text][label] without a definition as literal
        prose — bracket math like E[j][t] outside backticks must pass."""
        write(
            tmp_path,
            "README.md",
            "see [the roadmap][missing]; the table E[j][t] holds e_t\n",
        )
        assert check_docs(tmp_path) == []

    def test_implicit_label_uses_text(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            "see [roadmap][]\n\n[roadmap]: ROADMAP.md\n",
        )
        write(tmp_path, "ROADMAP.md", "# Open items\n")
        assert check_docs(tmp_path) == []


class TestCodeIsIgnored:
    def test_bracket_math_in_code_spans_not_links(self, tmp_path):
        write(tmp_path, "README.md", "the DP table `E[j][t]` and `a[i][j]`\n")
        assert check_docs(tmp_path) == []

    def test_fenced_blocks_ignored(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            "```python\nx = [text](missing.md)\nrows[i][j]\n```\n",
        )
        assert check_docs(tmp_path) == []

    def test_heading_anchors_keep_code_spans(self, tmp_path):
        write(tmp_path, "docs/a.md", "# The `repro.sim` layer\n")
        write(tmp_path, "README.md", "[a](docs/a.md#the-reprosim-layer)\n")
        assert check_docs(tmp_path) == []

    def test_fence_comments_are_not_anchors(self, tmp_path):
        """A `# comment` inside a code fence must not satisfy an anchor
        link — only real headings count."""
        write(
            tmp_path,
            "ROADMAP.md",
            "# Real heading\n\n```sh\n# phantom heading\nrun thing\n```\n",
        )
        write(tmp_path, "README.md", "[x](ROADMAP.md#phantom-heading)\n")
        problems = check_docs(tmp_path)
        assert len(problems) == 1
        assert "broken anchor" in problems[0]


class TestRepoDocsAreClean:
    def test_the_real_tree_passes(self):
        assert check_docs(REPO_ROOT) == []
