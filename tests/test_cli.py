"""Tests for the command-line interface (direct main() invocation)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "steane"])
        assert args.prep == "heuristic"
        assert args.verification == "optimal"

    def test_simulate_p_list(self):
        args = build_parser().parse_args(
            ["simulate", "steane", "--p", "0.001", "0.01"]
        )
        assert args.p == [0.001, 0.01]

    def test_shard_flags_on_every_engine_backed_subcommand(self):
        for command in (
            ["check", "steane"],
            ["ftcheck", "steane"],
            ["simulate", "steane"],
            ["table1"],
            ["figure4"],
            ["budget", "steane"],
        ):
            args = build_parser().parse_args(command)
            assert args.workers == 1, command
            assert args.max_slab is None, command
            assert args.cluster is None, command
            assert args.mem_budget is None, command
            args = build_parser().parse_args(
                command
                + [
                    "--workers", "4", "--max-slab", "2048",
                    "--cluster", "127.0.0.1:7781,127.0.0.1:7782",
                    "--mem-budget", "64M",
                ]
            )
            assert args.workers == 4
            assert args.max_slab == 2048
            assert args.cluster == "127.0.0.1:7781,127.0.0.1:7782"
            assert args.mem_budget == "64M"

    def test_pipeline_depth_on_every_engine_backed_subcommand(self):
        for command in (
            ["check", "steane"],
            ["ftcheck", "steane"],
            ["simulate", "steane"],
            ["table1"],
            ["figure4"],
            ["budget", "steane"],
        ):
            args = build_parser().parse_args(command)
            assert args.pipeline_depth is None, command
            args = build_parser().parse_args(command + ["--pipeline-depth", "8"])
            assert args.pipeline_depth == 8

    def test_engine_choices_include_kernel_and_auto(self):
        for command in (
            ["ftcheck", "steane"],
            ["simulate", "steane"],
            ["figure4"],
            ["budget", "steane"],
        ):
            for engine in ("batched", "kernel", "auto", "reference"):
                args = build_parser().parse_args(
                    command + ["--engine", engine]
                )
                assert args.engine == engine
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["budget", "steane", "--engine", "warp"]
            )

    def test_figure4_shard_axis(self):
        args = build_parser().parse_args(["figure4"])
        assert args.shard == "auto"
        args = build_parser().parse_args(["figure4", "--shard", "intra"])
        assert args.shard == "intra"

    def test_cluster_worker_subcommand(self):
        args = build_parser().parse_args(
            ["cluster", "worker", "--listen", "127.0.0.1:7781"]
        )
        assert args.command == "cluster"
        assert args.cluster_command == "worker"
        assert args.listen == "127.0.0.1:7781"
        assert args.max_chunks is None
        args = build_parser().parse_args(
            ["cluster", "worker", "--listen", ":0", "--max-chunks", "3"]
        )
        assert args.max_chunks == 3

    def test_cluster_worker_requires_listen(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "worker"])


class TestCommands:
    def test_codes(self, capsys):
        assert main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "steane" in out
        assert "(16, 6, 4)" in out

    def test_synthesize(self, capsys):
        assert main(["synthesize", "steane"]) == 0
        out = capsys.readouterr().out
        assert "1 verification ancillas, 3 CNOTs" in out

    def test_synthesize_with_outputs(self, tmp_path, capsys):
        protocol_path = tmp_path / "steane.json"
        qasm_dir = tmp_path / "qasm"
        assert (
            main(
                [
                    "synthesize",
                    "steane",
                    "-o",
                    str(protocol_path),
                    "--qasm",
                    str(qasm_dir),
                ]
            )
            == 0
        )
        assert protocol_path.exists()
        assert (qasm_dir / "prep.qasm").exists()

    def test_check_catalog_code(self, capsys):
        assert main(["check", "steane"]) == 0
        assert "fault tolerant" in capsys.readouterr().out

    def test_check_loaded_protocol(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["synthesize", "steane", "-o", str(path)])
        capsys.readouterr()
        assert main(["check", "--load", str(path)]) == 0
        assert "fault tolerant" in capsys.readouterr().out

    def test_check_without_target_errors(self, capsys):
        assert main(["check"]) == 2

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "steane",
                    "--shots",
                    "300",
                    "--k-max",
                    "2",
                    "--p",
                    "0.001",
                    "0.01",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "f_1 = 0.0" in out
        assert "p=0.001" in out

    def test_figure4_single_code(self, capsys):
        assert (
            main(["figure4", "--codes", "steane", "--shots", "300"]) == 0
        )
        out = capsys.readouterr().out
        assert "== steane" in out
        assert "slope" in out

    def test_budget(self, capsys):
        assert main(["budget", "steane"]) == 0
        out = capsys.readouterr().out
        assert "c2 = 57.40" in out
        assert "%" in out

    def test_budget_reference_engine_identical(self, capsys):
        assert main(["budget", "steane"]) == 0
        batched = capsys.readouterr().out
        assert main(["budget", "steane", "--engine", "reference"]) == 0
        assert capsys.readouterr().out == batched

    def test_budget_kernel_and_auto_engines_identical(self, capsys):
        """The raw-speed tier and its auto resolution reproduce the
        batched output byte-for-byte — on any interpreter, numba or not."""
        assert main(["budget", "steane"]) == 0
        batched = capsys.readouterr().out
        assert main(["budget", "steane", "--engine", "kernel"]) == 0
        assert capsys.readouterr().out == batched
        assert main(["budget", "steane", "--engine", "auto"]) == 0
        assert capsys.readouterr().out == batched

    def test_budget_cluster_pipeline_depth_identical(self, capsys):
        """--pipeline-depth only changes scheduling, never results."""
        import threading

        from repro.sim.cluster import ClusterWorker

        assert main(["budget", "steane"]) == 0
        serial = capsys.readouterr().out
        worker = ClusterWorker("127.0.0.1", 0)
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        spec = f"{worker.host}:{worker.port}"
        try:
            for depth in ("1", "8"):
                assert (
                    main(
                        ["budget", "steane", "--cluster", spec,
                         "--pipeline-depth", depth]
                    )
                    == 0
                )
                assert capsys.readouterr().out == serial
        finally:
            worker.stop()

    def test_budget_sharded_identical(self, capsys):
        assert main(["budget", "steane"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                ["budget", "steane", "--workers", "2", "--max-slab", "999"]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_simulate_workers_identical(self, capsys):
        command = [
            "simulate", "steane", "--shots", "300", "--k-max", "2",
            "--p", "0.01",
        ]
        assert main(command + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(command + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_budget_max_runs_guard(self, capsys):
        with pytest.raises(ValueError):
            main(["budget", "steane", "--max-runs", "10"])

    def test_budget_cluster_identical(self, capsys):
        """--cluster against two real localhost TCP workers reproduces
        the serial output byte-for-byte."""
        import threading

        from repro.sim.cluster import ClusterWorker

        assert main(["budget", "steane"]) == 0
        serial = capsys.readouterr().out
        workers = [ClusterWorker("127.0.0.1", 0) for _ in range(2)]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        spec = ",".join(f"{w.host}:{w.port}" for w in workers)
        try:
            assert main(["budget", "steane", "--cluster", spec]) == 0
            assert capsys.readouterr().out == serial
        finally:
            for worker in workers:
                worker.stop()

    def test_budget_mem_budget_identical(self, capsys):
        """Adaptive slab sizing never changes exact enumerations."""
        assert main(["budget", "steane"]) == 0
        serial = capsys.readouterr().out
        assert main(["budget", "steane", "--mem-budget", "1M"]) == 0
        assert capsys.readouterr().out == serial

    def test_ftcheck(self, capsys):
        assert main(["ftcheck", "steane"]) == 0
        out = capsys.readouterr().out
        assert "fault tolerant" in out
        assert "batched engine" in out

    def test_ftcheck_with_survey(self, capsys):
        assert main(["ftcheck", "steane", "--survey", "200"]) == 0
        out = capsys.readouterr().out
        assert "t=2 survey" in out
        assert "sampled fault pairs" in out

    def test_ftcheck_loaded_protocol(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["synthesize", "steane", "-o", str(path)])
        capsys.readouterr()
        assert main(["ftcheck", "--load", str(path)]) == 0
        assert "fault tolerant" in capsys.readouterr().out

    def test_ftcheck_without_target_errors(self, capsys):
        assert main(["ftcheck"]) == 2

    def test_simulate_direct(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "steane",
                    "--shots",
                    "200",
                    "--k-max",
                    "2",
                    "--p",
                    "0.01",
                    "--direct",
                ]
            )
            == 0
        )
        assert "direct, 200 shots" in capsys.readouterr().out

    def test_table1_single_fast_run(self, capsys, monkeypatch):
        # Restrict to the Steane rows to keep the test quick.
        import repro.experiments.table1 as table1_module

        monkeypatch.setattr(
            table1_module,
            "TABLE1_FAST_ROWS",
            [("steane", "heuristic", "optimal")],
        )
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "steane" in out
        assert "ΣANC" in out

    def test_table1_verify_ft_column(self, capsys, monkeypatch):
        import repro.experiments.table1 as table1_module

        monkeypatch.setattr(
            table1_module,
            "TABLE1_FAST_ROWS",
            [("steane", "heuristic", "optimal")],
        )
        assert main(["table1", "--fast", "--verify-ft"]) == 0
        assert " FT " in capsys.readouterr().out


class TestNoiseFlag:
    def test_noise_flag_on_every_engine_backed_subcommand(self):
        for command in (
            ["check", "steane"],
            ["ftcheck", "steane"],
            ["simulate", "steane"],
            ["table1"],
            ["figure4"],
            ["budget", "steane"],
        ):
            args = build_parser().parse_args(command)
            assert args.noise is None, command
            args = build_parser().parse_args(
                command + ["--noise", "biased:eta=100,p=1e-3"]
            )
            assert args.noise == "biased:eta=100,p=1e-3"

    def test_bad_spec_is_loud(self):
        with pytest.raises(ValueError, match="unknown noise model"):
            main(["budget", "steane", "--noise", "thermal:p=1"])

    def test_e1_1_spec_output_identical_to_default(self, capsys):
        assert main(["budget", "steane"]) == 0
        plain = capsys.readouterr().out
        assert main(["budget", "steane", "--noise", "e1_1:p=1e-3"]) == 0
        assert capsys.readouterr().out == plain

    def test_direct_sweep_with_legacy_model_specs(self, capsys):
        """--direct calls model.with_p per sweep point — E1_1 and scaled
        specs must survive it (regression: with_p was missing)."""
        for spec in ("e1_1:p=1e-3", "scaled:p=1e-3,two_qubit=5"):
            assert (
                main(
                    [
                        "simulate",
                        "steane",
                        "--shots",
                        "100",
                        "--direct",
                        "--noise",
                        spec,
                        "--p",
                        "1e-3",
                    ]
                )
                == 0
            )
            assert "direct" in capsys.readouterr().out

    def test_biased_simulate_runs(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "steane",
                    "--shots",
                    "300",
                    "--noise",
                    "biased:eta=100,p=2e-2",
                    "--p",
                    "1e-3",
                    "2e-2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "biased:eta=100,p=2e-2" in out
        assert "p_L" in out

    def test_rate_map_model_with_default_sweep(self, capsys):
        """The CLI's own --noise help example must run with the default
        --p sweep: unreachable points (a site rate would reach 1) are
        skipped with a note, not a crash."""
        assert (
            main(
                [
                    "simulate",
                    "steane",
                    "--shots",
                    "150",
                    "--noise",
                    "inhom:p=1e-3,meas=1e-2,loc12=5e-3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipping p >=" in out
        assert "p=0.01:" in out  # reachable points still reported

    def test_correlated_ftcheck_reports_pair_events(self, capsys):
        code = main(
            [
                "ftcheck",
                "steane",
                "--noise",
                "correlated:p=1e-3,pair_rate=1e-4",
                "--max-violations",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # weight-2 crosstalk events defeat a d=3 protocol
        assert "NOT fault tolerant" in out
