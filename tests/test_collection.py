"""Guard: the suite must always collect cleanly.

The seed repository shipped 16 modules that errored at collection
(``attempted relative import with no known parent package``), silently
skipping the entire cross-validation surface. This test runs a real
``pytest --collect-only`` subprocess so any future packaging regression
fails loudly instead of shrinking the suite.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Collection floor: the fully-repaired seed suite plus the engine tests.
MIN_COLLECTED = 607


def test_collect_only_reports_no_errors():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--collect-only",
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    tail = "\n".join(result.stdout.strip().splitlines()[-5:])
    assert result.returncode == 0, f"collection failed:\n{tail}\n{result.stderr[-2000:]}"
    # The summary line reads "N tests collected in S" when clean and
    # "N tests collected, M errors in S" when collection broke.
    match = re.search(r"(\d+) tests collected([^\n]*)", result.stdout)
    assert match, f"no collection summary found:\n{tail}"
    assert "error" not in match.group(2).lower(), (
        f"collection errors:\n{match.group(0)}"
    )
    collected = int(match.group(1))
    assert collected >= MIN_COLLECTED, (
        f"only {collected} tests collected (floor {MIN_COLLECTED}) — "
        "did a module drop out of collection?"
    )
